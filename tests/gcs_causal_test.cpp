// Causal service level: per-sender order plus happened-before across
// senders (vector-clock holdback on the per-origin streams).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

struct CausalRec {
  std::vector<std::string> messages;
  std::unique_ptr<gcs::Client> client;
  explicit CausalRec(const std::string& name) {
    gcs::ClientCallbacks cb;
    cb.on_message = [this](const gcs::GroupMessage& m) {
      messages.emplace_back(m.payload.begin(), m.payload.end());
    };
    client = std::make_unique<gcs::Client>(name, std::move(cb));
  }
  void send(const std::string& text) {
    client->multicast("g", util::Bytes(text.begin(), text.end()),
                      gcs::ServiceType::kCausal);
  }
  [[nodiscard]] int index_of(const std::string& text) const {
    for (std::size_t i = 0; i < messages.size(); ++i) {
      if (messages[i] == text) return static_cast<int>(i);
    }
    return -1;
  }
};

struct CausalTest : ::testing::Test {
  GcsCluster c{3};
  std::vector<std::unique_ptr<CausalRec>> recs;

  void SetUp() override {
    c.start_all();
    c.run(sim::seconds(5.0));
    for (std::size_t i = 0; i < c.daemons.size(); ++i) {
      auto r = std::make_unique<CausalRec>("c" + std::to_string(i));
      ASSERT_TRUE(r->client->connect(*c.daemons[i]));
      r->client->join("g");
      recs.push_back(std::move(r));
    }
    c.run(sim::seconds(1.0));
  }
};

TEST_F(CausalTest, DeliversToAll) {
  recs[0]->send("hello");
  c.run(sim::seconds(1.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 1u);
    EXPECT_EQ(r->messages[0], "hello");
  }
}

TEST_F(CausalTest, HappenedBeforeIsRespected) {
  // The classic triangle: member 0 sends "cause"; member 1, having SEEN
  // "cause", sends "effect". Member 2 must never dispatch "effect" before
  // "cause", no matter how frames reorder or drop.
  c.fabric.segment_config(c.seg).drop_probability = 0.20;
  for (int round = 0; round < 10; ++round) {
    recs[0]->send("cause" + std::to_string(round));
    c.run(sim::milliseconds(50));
    if (recs[1]->index_of("cause" + std::to_string(round)) >= 0) {
      recs[1]->send("effect" + std::to_string(round));
    }
    c.run(sim::milliseconds(50));
  }
  c.fabric.segment_config(c.seg).drop_probability = 0.0;
  c.run(sim::seconds(5.0));
  for (auto& r : recs) {
    for (int round = 0; round < 10; ++round) {
      int cause = r->index_of("cause" + std::to_string(round));
      int effect = r->index_of("effect" + std::to_string(round));
      if (effect >= 0) {
        ASSERT_GE(cause, 0) << "effect without cause at some member";
        EXPECT_LT(cause, effect)
            << "causality violated for round " << round;
      }
    }
  }
}

TEST_F(CausalTest, PerSenderOrderHolds) {
  for (int i = 0; i < 10; ++i) recs[0]->send("m" + std::to_string(i));
  c.run(sim::seconds(1.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 10u);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(r->messages[static_cast<std::size_t>(i)],
                "m" + std::to_string(i));
    }
  }
}

TEST_F(CausalTest, ConcurrentMessagesMayInterleaveButAllArrive) {
  recs[0]->send("a");
  recs[1]->send("b");  // concurrent with "a"
  c.run(sim::seconds(1.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 2u);
    EXPECT_TRUE(r->index_of("a") >= 0 && r->index_of("b") >= 0);
  }
}

TEST_F(CausalTest, MixedWithFifoSharesStreams) {
  recs[0]->client->multicast("g", util::Bytes{'f'},
                             gcs::ServiceType::kFifo);
  recs[0]->send("c");
  c.run(sim::seconds(1.0));
  // Same origin stream: fifo first, causal second, everywhere.
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 2u);
    EXPECT_EQ(r->messages[0], "f");
    EXPECT_EQ(r->messages[1], "c");
  }
}

TEST_F(CausalTest, LossRecoveredAndCausalityKept) {
  c.fabric.segment_config(c.seg).drop_probability = 0.25;
  recs[0]->send("first");
  c.run(sim::milliseconds(100));
  recs[1]->send("second");  // depends on "first" if member 1 saw it
  c.run(sim::seconds(5.0));
  c.fabric.segment_config(c.seg).drop_probability = 0.0;
  c.run(sim::seconds(5.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 2u);
  }
}

}  // namespace
}  // namespace wam::testing
