// GCS over IP multicast (the real Spread's transport mode): daemons form
// views and order messages exactly as over broadcast, but bystander hosts
// on the LAN never receive daemon traffic.
#include <gtest/gtest.h>

#include "gcs_fixture.hpp"
#include "util/assert.hpp"

namespace wam::testing {
namespace {

struct McastCluster : GcsCluster {
  explicit McastCluster(int n)
      : GcsCluster(n, gcs::Config::spread_tuned().with_multicast()) {}
};

TEST(GcsMulticast, ClusterForms) {
  McastCluster c(4);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2, 3}}, "multicast formation");
}

TEST(GcsMulticast, FaultAndRecovery) {
  McastCluster c(3);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1}}, "multicast fault");
  c.hosts[2]->set_interface_up(0, true);
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2}}, "multicast recovery");
}

TEST(GcsMulticast, BystanderHostsSeeNoDaemonTraffic) {
  McastCluster c(3);
  // A bystander on the same LAN with a socket on the GCS port.
  net::Host bystander(c.sched, c.fabric, "bystander", &c.log);
  bystander.add_interface(c.seg, net::Ipv4Address(10, 0, 0, 99), 24);
  std::uint64_t seen = 0;
  bystander.open_udp(c.daemons[0]->config().port,
                     [&](const net::Host::UdpContext&, const util::Bytes&) {
                       ++seen;
                     });
  c.start_all();
  c.run(sim::seconds(10.0));
  EXPECT_EQ(seen, 0u) << "multicast mode must not leak daemon frames";
}

TEST(GcsMulticast, BroadcastModeDoesLeakByComparison) {
  GcsCluster c(3, gcs::Config::spread_tuned());  // broadcast transport
  net::Host bystander(c.sched, c.fabric, "bystander", &c.log);
  bystander.add_interface(c.seg, net::Ipv4Address(10, 0, 0, 99), 24);
  std::uint64_t seen = 0;
  bystander.open_udp(c.daemons[0]->config().port,
                     [&](const net::Host::UdpContext&, const util::Bytes&) {
                       ++seen;
                     });
  c.start_all();
  c.run(sim::seconds(10.0));
  EXPECT_GT(seen, 0u);
}

TEST(GcsMulticast, OrderingWorksOverMulticast) {
  McastCluster c(3);
  c.start_all();
  c.run(sim::seconds(5.0));
  std::vector<std::vector<std::string>> got(3);
  std::vector<std::unique_ptr<gcs::Client>> clients;
  for (int i = 0; i < 3; ++i) {
    gcs::ClientCallbacks cb;
    auto idx = static_cast<std::size_t>(i);
    cb.on_message = [&got, idx](const gcs::GroupMessage& m) {
      got[idx].emplace_back(m.payload.begin(), m.payload.end());
    };
    auto cl = std::make_unique<gcs::Client>("m" + std::to_string(i),
                                            std::move(cb));
    ASSERT_TRUE(cl->connect(*c.daemons[idx]));
    cl->join("g");
    clients.push_back(std::move(cl));
  }
  c.run(sim::seconds(1.0));
  for (int i = 0; i < 9; ++i) {
    clients[static_cast<std::size_t>(i % 3)]->multicast(
        "g", util::Bytes{static_cast<std::uint8_t>('0' + i)});
  }
  c.run(sim::seconds(1.0));
  ASSERT_EQ(got[0].size(), 9u);
  EXPECT_EQ(got[0], got[1]);
  EXPECT_EQ(got[1], got[2]);
}

TEST(GcsMulticast, InvalidGroupRejected) {
  auto config = gcs::Config::spread_tuned();
  config.multicast_group = net::Ipv4Address(10, 0, 0, 1);
  EXPECT_THROW(config.validate(), util::ContractViolation);
}

}  // namespace
}  // namespace wam::testing
