// Soak entry point: a long randomized end-to-end run, DISABLED by default
// (run explicitly with --gtest_also_run_disabled_tests). CONTRIBUTING.md
// points protocol changes here.
#include <gtest/gtest.h>

#include <set>

#include "sim/random.hpp"
#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

TEST(Soak, DISABLED_HundredPhasesOfChaos) {
  sim::Rng rng(0xC0FFEE);
  auto config = test_config(9);
  config.balance_timeout = sim::seconds(12.0);
  WamCluster c(6, config);
  c.start_wam();
  c.run(sim::seconds(5.0));

  std::set<int> down;
  std::vector<std::vector<int>> groups{{0, 1, 2, 3, 4, 5}};
  for (int phase = 0; phase < 100; ++phase) {
    switch (rng.below(5)) {
      case 0: {
        int k = static_cast<int>(rng.range(1, 3));
        std::vector<std::vector<int>> next(static_cast<std::size_t>(k));
        for (int i = 0; i < 6; ++i) {
          next[rng.below(static_cast<std::uint64_t>(k))].push_back(i);
        }
        groups.clear();
        for (auto& g : next) {
          if (!g.empty()) groups.push_back(g);
        }
        c.partition(groups);
        break;
      }
      case 1:
        groups = {{0, 1, 2, 3, 4, 5}};
        c.merge();
        break;
      case 2: {
        int victim = static_cast<int>(rng.below(6));
        down.insert(victim);
        c.hosts[static_cast<std::size_t>(victim)]->set_interface_up(0, false);
        break;
      }
      case 3:
        if (!down.empty()) {
          int revive = *down.begin();
          down.erase(down.begin());
          c.hosts[static_cast<std::size_t>(revive)]->set_interface_up(0,
                                                                      true);
        }
        break;
      case 4:
        // brief lossy window
        c.fabric.segment_config(c.seg).drop_probability = 0.05;
        c.run(sim::seconds(3.0));
        c.fabric.segment_config(c.seg).drop_probability = 0.0;
        break;
    }
    c.run(sim::seconds(10.0));
    std::vector<std::vector<int>> components;
    for (const auto& g : groups) {
      std::vector<int> alive;
      for (int idx : g) {
        if (down.count(idx) == 0) alive.push_back(idx);
      }
      if (!alive.empty()) components.push_back(alive);
    }
    for (int idx : down) components.push_back({idx});
    for (const auto& component : components) {
      c.expect_correctness(component,
                           ("soak phase " + std::to_string(phase)).c_str());
    }
  }
  for (int idx : down) {
    c.hosts[static_cast<std::size_t>(idx)]->set_interface_up(0, true);
  }
  c.merge();
  c.run(sim::seconds(12.0));
  c.expect_correctness({0, 1, 2, 3, 4, 5}, "soak final");
}

}  // namespace
}  // namespace wam::testing
