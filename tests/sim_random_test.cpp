#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wam::sim {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values show up
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, DurationRange) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    auto d = rng.duration_range(milliseconds(10), milliseconds(20));
    EXPECT_GE(d, milliseconds(10));
    EXPECT_LE(d, milliseconds(20));
  }
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(99);
  Rng child1 = a.fork();
  Rng b(99);
  Rng child2 = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next(), child2.next());
}

}  // namespace
}  // namespace wam::sim
