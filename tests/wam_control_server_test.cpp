// Remote control channel: wackatrl-style commands over the simulated LAN.
#include "wackamole/control_server.hpp"

#include <gtest/gtest.h>

#include "apps/cluster_scenario.hpp"

namespace wam::wackamole {
namespace {

struct ControlServerTest : ::testing::Test {
  apps::ClusterOptions opt;
  std::unique_ptr<apps::ClusterScenario> s;
  std::unique_ptr<ControlServer> server;
  std::unique_ptr<ControlClient> client;
  std::string reply;
  int replies = 0;

  void SetUp() override {
    opt.num_servers = 3;
    opt.num_vips = 6;
    opt.with_router = false;  // control client sits on the cluster LAN
    s = std::make_unique<apps::ClusterScenario>(opt);
    s->start();
    ASSERT_TRUE(s->run_until_stable(sim::seconds(10.0)));
    server = std::make_unique<ControlServer>(s->server_host(0), s->wam(0));
    server->start();
    client = std::make_unique<ControlClient>(s->client_host());
  }

  void command(const std::string& cmd) {
    client->send(s->server_host(0).primary_ip(0), cmd,
                 [this](const std::string& text) {
                   reply = text;
                   ++replies;
                 });
    s->run(sim::seconds(1.0));
  }
};

TEST_F(ControlServerTest, StatusOverTheWire) {
  command("status");
  EXPECT_EQ(replies, 1);
  EXPECT_NE(reply.find("state: RUN"), std::string::npos);
  EXPECT_EQ(server->requests_served(), 1u);
}

TEST_F(ControlServerTest, RemoteBalance) {
  command("balance");
  EXPECT_NE(reply.find("balance broadcast"), std::string::npos);
  s->run(sim::seconds(1.0));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(s->wam(i).owned().size(), 2u);
  }
}

TEST_F(ControlServerTest, RemoteLeave) {
  command("leave");
  EXPECT_NE(reply.find("left the cluster"), std::string::npos);
  s->run(sim::seconds(2.0));
  EXPECT_FALSE(s->wam(0).running());
  EXPECT_TRUE(s->coverage_exactly_once({1, 2}));
}

TEST_F(ControlServerTest, UnknownCommandGetsUsage) {
  command("frobnicate");
  EXPECT_NE(reply.find("usage:"), std::string::npos);
}

TEST_F(ControlServerTest, StoppedServerStopsAnswering) {
  server->stop();
  command("status");
  EXPECT_EQ(replies, 0);
}

TEST_F(ControlServerTest, SequentialCommands) {
  command("status");
  command("balance");
  command("status");
  EXPECT_EQ(replies, 3);
  EXPECT_EQ(server->requests_served(), 3u);
}

}  // namespace
}  // namespace wam::wackamole
