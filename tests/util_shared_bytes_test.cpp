#include "util/shared_bytes.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace wam::util {
namespace {

TEST(SharedBytes, DefaultIsEmpty) {
  SharedBytes b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(SharedBytes, WrapsBytesWithoutCopyOnMove) {
  Bytes raw{1, 2, 3, 4};
  const std::uint8_t* data = raw.data();
  SharedBytes b(std::move(raw));
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.data(), data);  // moved, not copied
  EXPECT_EQ(b[2], 3);
}

TEST(SharedBytes, SliceSharesStorage) {
  SharedBytes whole{10, 20, 30, 40, 50};
  auto mid = whole.slice(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0], 20);
  EXPECT_EQ(mid[2], 40);
  EXPECT_TRUE(mid.shares_storage_with(whole));
  EXPECT_EQ(mid.data(), whole.data() + 1);
}

TEST(SharedBytes, SliceOutOfRangeThrows) {
  SharedBytes b{1, 2, 3};
  EXPECT_NO_THROW(b.slice(3, 0));
  EXPECT_THROW(b.slice(2, 2), std::out_of_range);
  EXPECT_THROW(b.slice(4, 0), std::out_of_range);
}

TEST(SharedBytes, CopyIsRefcountedNotDeep) {
  SharedBytes a{1, 2, 3};
  SharedBytes b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a.data(), b.data());
  EXPECT_GE(a.use_count(), 2);
}

TEST(SharedBytes, ToBytesDetaches) {
  SharedBytes a{1, 2, 3};
  Bytes copy = a.to_bytes();
  EXPECT_NE(copy.data(), a.data());
  EXPECT_EQ(copy, (Bytes{1, 2, 3}));
}

TEST(SharedBytes, ImplicitBytesConversionKeepsLegacyLambdasWorking) {
  SharedBytes a{7, 8};
  // The exact shape of a pre-COW UDP handler.
  auto legacy = [](const Bytes& payload) { return payload.size(); };
  EXPECT_EQ(legacy(a), 2u);
}

TEST(SharedBytes, EqualityMixesWithBytes) {
  SharedBytes a{1, 2, 3};
  Bytes b{1, 2, 3};
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(b == a);
  EXPECT_TRUE(a == SharedBytes(b));
  EXPECT_FALSE(a != b);
  EXPECT_FALSE(a == (Bytes{1, 2}));
}

TEST(SharedBytes, ReaderSlicesShareTheBackingBuffer) {
  ByteWriter w;
  w.u16(0xbeef);
  w.bytes(Bytes{9, 9, 9, 9});
  SharedBytes wire(w.take());
  ByteReader r(wire);
  EXPECT_EQ(r.u16(), 0xbeef);
  auto payload = r.shared_bytes();
  EXPECT_EQ(payload.size(), 4u);
  EXPECT_TRUE(payload.shares_storage_with(wire));
}

TEST(SharedBytes, ReaderWithoutBackingCopies) {
  Bytes raw{0, 0, 0, 2, 5, 6};  // u32 length prefix, then payload
  ByteReader r(raw);
  auto payload = r.shared_bytes();
  EXPECT_EQ(payload, (Bytes{5, 6}));  // correct, just not zero-copy
}

}  // namespace
}  // namespace wam::util
