// MetricRegistry: names, wildcard matching, bound-counter semantics,
// histograms and the deterministic JSON export.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"

namespace wam::obs {
namespace {

TEST(MetricRegistry, CounterCellsAreStableAndShared) {
  MetricRegistry reg;
  auto& a = reg.counter("wam/s1/acquires");
  a = 3;
  // Get-or-create returns the same cell.
  EXPECT_EQ(&reg.counter("wam/s1/acquires"), &a);
  EXPECT_EQ(reg.counter_value("wam/s1/acquires"), 3u);
  EXPECT_EQ(reg.counter_value("wam/s1/missing"), 0u);
}

TEST(MetricRegistry, NameMatchingRules) {
  // Exact.
  EXPECT_TRUE(MetricRegistry::name_matches("a/b/c", "a/b/c"));
  EXPECT_FALSE(MetricRegistry::name_matches("a/b/c", "a/b/d"));
  // Subtree prefix.
  EXPECT_TRUE(MetricRegistry::name_matches("a/b", "a/b/c"));
  EXPECT_TRUE(MetricRegistry::name_matches("a", "a/b/c"));
  EXPECT_FALSE(MetricRegistry::name_matches("a/bb", "a/b/c"));
  // '*' = exactly one path segment.
  EXPECT_TRUE(MetricRegistry::name_matches("a/*/c", "a/b/c"));
  EXPECT_FALSE(MetricRegistry::name_matches("a/*/c", "a/b/x/c"));
  EXPECT_FALSE(MetricRegistry::name_matches("a/*/c", "a/c"));
}

TEST(MetricRegistry, WildcardSumAcrossDaemons) {
  MetricRegistry reg;
  reg.counter("wam/s1/acquires") = 2;
  reg.counter("wam/s2/acquires") = 3;
  reg.counter("wam/s10/acquires") = 5;
  reg.counter("wam/s1/releases") = 100;
  reg.counter("gcs/s1/acquires") = 7;  // different subsystem

  EXPECT_EQ(reg.sum("wam/*/acquires"), 10u);
  EXPECT_EQ(reg.sum("wam/s1"), 102u);       // subtree
  EXPECT_EQ(reg.sum("wam/s2/acquires"), 3u);  // exact
  EXPECT_EQ(reg.sum("nothing/here"), 0u);

  auto names = reg.match("wam/*/acquires");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names.front(), "wam/s1/acquires");  // sorted
}

TEST(MetricRegistry, BoundCounterReadsAndWritesTheCell) {
  MetricRegistry reg;
  Counter c;
  ++c;
  c += 4;  // free-standing value 5
  reg.bind(c, "x/count");
  // Binding folds the free-standing value into the cell.
  EXPECT_EQ(reg.counter_value("x/count"), 5u);
  ++c;
  EXPECT_EQ(reg.counter_value("x/count"), 6u);
  EXPECT_EQ(c.value(), 6u);
  // Copying snapshots the value and drops the binding.
  Counter snapshot = c;
  ++c;
  EXPECT_EQ(snapshot.value(), 6u);
  EXPECT_EQ(c.value(), 7u);
  // Implicit conversion keeps the legacy arithmetic idiom working.
  std::uint64_t before = snapshot;
  EXPECT_EQ(before + 1, c.value());
}

TEST(MetricRegistry, GaugeBindAndValue) {
  MetricRegistry reg;
  Gauge g;
  g.set(1.5);
  reg.bind(g, "x/level");
  EXPECT_DOUBLE_EQ(reg.gauge_value("x/level"), 1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("x/level"), 2.0);
}

TEST(MetricRegistry, HistogramBucketsAndStats) {
  MetricRegistry reg;
  auto& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.record(0.5);
  h.record(5.0);
  h.record(5.0);
  h.record(1000.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1010.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  ASSERT_EQ(h.counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  // Re-requesting keeps the original bounds.
  auto& again = reg.histogram("lat", {999.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bounds().size(), 3u);
}

TEST(MetricRegistry, JsonExportRoundTripsAndFiltersByPrefix) {
  MetricRegistry reg;
  reg.counter("wam/s1/acquires") = 2;
  reg.counter("net/frames_sent") = 9;
  reg.gauge("ip/s1/held_groups") = 3.0;
  reg.histogram("sim/latency", {1.0, 2.0}).record(1.5);

  auto doc = parse_json(reg.to_json());
  EXPECT_EQ(doc.at("counters").at("wam/s1/acquires").as_u64(), 2u);
  EXPECT_EQ(doc.at("counters").at("net/frames_sent").as_u64(), 9u);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("ip/s1/held_groups").number, 3.0);
  EXPECT_EQ(doc.at("histograms").at("sim/latency").at("count").as_u64(), 1u);

  auto filtered = parse_json(reg.to_json("wam"));
  EXPECT_TRUE(filtered.at("counters").has("wam/s1/acquires"));
  EXPECT_FALSE(filtered.at("counters").has("net/frames_sent"));

  // Deterministic: same registry exports byte-identical documents.
  EXPECT_EQ(reg.to_json(), reg.to_json());
}

}  // namespace
}  // namespace wam::obs
