// Full-stack integration: Figure 3's web cluster with real ARP, a real
// router, echo servers and the measuring client.
#include <gtest/gtest.h>

#include "apps/cluster_scenario.hpp"

namespace wam::apps {
namespace {

TEST(IntegrationCluster, ClientIsServedThroughRouter) {
  ClusterScenario s(ClusterOptions{});
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
  s.start_probe(0);
  s.run(sim::seconds(1.0));
  EXPECT_GT(s.probe().responses().size(), 50u);
  EXPECT_FALSE(s.probe().current_server().empty());
}

TEST(IntegrationCluster, FailoverServesFromAnotherServer) {
  ClusterScenario s(ClusterOptions{});
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.start_probe(0);
  s.run(sim::seconds(1.0));
  int victim = s.owner_of(0);
  ASSERT_GE(victim, 0);
  auto before = s.probe().current_server();

  s.disconnect_server(victim);
  s.run(sim::seconds(6.0));  // tuned timeouts: ~2.5 s interruption

  auto after = s.probe().current_server();
  EXPECT_NE(after, before);
  EXPECT_FALSE(after.empty());
  auto gaps = s.probe().interruptions();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].server_before, before);
  EXPECT_EQ(gaps[0].server_after, after);
}

TEST(IntegrationCluster, TunedInterruptionWithinPaperRange) {
  ClusterOptions opt;
  opt.gcs = gcs::Config::spread_tuned();
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.start_probe(0);
  s.run(sim::seconds(1.0));
  int victim = s.owner_of(0);
  s.disconnect_server(victim);
  s.run(sim::seconds(8.0));
  auto gaps = s.probe().interruptions();
  ASSERT_EQ(gaps.size(), 1u);
  double secs = sim::to_seconds(gaps[0].length());
  // Table 1 discussion: detection 0.6-1 s + discovery 1.4 s + install and
  // ARP spoof overhead.
  EXPECT_GE(secs, 1.8);
  EXPECT_LE(secs, 3.0);
}

TEST(IntegrationCluster, DefaultInterruptionWithinPaperRange) {
  ClusterOptions opt;
  opt.gcs = gcs::Config::spread_default();
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(30.0)));
  s.start_probe(0);
  s.run(sim::seconds(1.0));
  int victim = s.owner_of(0);
  s.disconnect_server(victim);
  s.run(sim::seconds(20.0));
  auto gaps = s.probe().interruptions();
  ASSERT_EQ(gaps.size(), 1u);
  double secs = sim::to_seconds(gaps[0].length());
  // The paper reports 10-12 s for default Spread.
  EXPECT_GE(secs, 9.5);
  EXPECT_LE(secs, 12.5);
}

TEST(IntegrationCluster, GracefulLeaveInterruptionTiny) {
  ClusterScenario s(ClusterOptions{});
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.start_probe(0);
  s.run(sim::seconds(1.0));
  int victim = s.owner_of(0);
  s.graceful_leave(victim);
  s.run(sim::seconds(2.0));
  // §6: graceful departure interrupts availability for ~10 ms, with a
  // conservative upper bound of 250 ms.
  auto gap = s.probe().longest_gap();
  EXPECT_LE(sim::to_millis(gap), 250.0);
  std::vector<int> survivors;
  for (int i = 0; i < s.num_servers(); ++i) {
    if (i != victim) survivors.push_back(i);
  }
  EXPECT_TRUE(s.coverage_exactly_once(survivors));
}

TEST(IntegrationCluster, UnprobedVipsAlsoMove) {
  ClusterOptions opt;
  opt.num_servers = 4;
  opt.num_vips = 8;
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.disconnect_server(1);
  s.run(sim::seconds(6.0));
  std::vector<int> survivors{0, 2, 3};
  EXPECT_TRUE(s.coverage_exactly_once(survivors));
}

TEST(IntegrationCluster, PartitionBothSidesCoverEverything) {
  ClusterOptions opt;
  opt.num_servers = 4;
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.partition({{0, 1}, {2, 3}});
  s.run(sim::seconds(8.0));
  EXPECT_TRUE(s.coverage_exactly_once({0, 1}));
  EXPECT_TRUE(s.coverage_exactly_once({2, 3}));
  s.merge();
  s.run(sim::seconds(8.0));
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
}

TEST(IntegrationCluster, SequentialFailuresDownToOneServer) {
  ClusterOptions opt;
  opt.num_servers = 4;
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.disconnect_server(3);
  s.run(sim::seconds(6.0));
  EXPECT_TRUE(s.coverage_exactly_once({0, 1, 2}));
  s.disconnect_server(2);
  s.run(sim::seconds(6.0));
  EXPECT_TRUE(s.coverage_exactly_once({0, 1}));
  s.disconnect_server(1);
  s.run(sim::seconds(6.0));
  // "as long as at least one physical server survives".
  EXPECT_TRUE(s.coverage_exactly_once({0}));
  EXPECT_EQ(s.wam(0).owned().size(), 10u);
}

TEST(IntegrationCluster, RouterArpCacheIsSpoofedOnFailover) {
  ClusterScenario s(ClusterOptions{});
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.start_probe(0);
  s.run(sim::seconds(1.0));
  int victim = s.owner_of(0);
  auto victim_mac = s.server_host(victim).mac(0);
  auto cached = s.router()->arp_cache().lookup(s.vip(0), s.sched.now());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, victim_mac);
  s.disconnect_server(victim);
  s.run(sim::seconds(6.0));
  int heir = s.owner_of(0);
  // owner_of scans all servers including the disconnected one (which still
  // holds its aliases in its own isolated component); find the reachable one.
  std::vector<int> survivors;
  for (int i = 0; i < s.num_servers(); ++i) {
    if (i != victim) survivors.push_back(i);
  }
  ASSERT_EQ(s.coverage_count(s.vip(0), survivors), 1);
  auto now_cached = s.router()->arp_cache().lookup(s.vip(0), s.sched.now());
  ASSERT_TRUE(now_cached.has_value());
  EXPECT_NE(*now_cached, victim_mac);
  (void)heir;
}

TEST(IntegrationCluster, TwelveServersTenVips) {
  // The paper's largest configuration: 12 servers, 10 VIPs.
  ClusterOptions opt;
  opt.num_servers = 12;
  opt.num_vips = 10;
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(15.0)));
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
  s.disconnect_server(5);
  s.run(sim::seconds(6.0));
  std::vector<int> survivors;
  for (int i = 0; i < 12; ++i) {
    if (i != 5) survivors.push_back(i);
  }
  EXPECT_TRUE(s.coverage_exactly_once(survivors));
}

}  // namespace
}  // namespace wam::apps
