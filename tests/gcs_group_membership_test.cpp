#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

struct Member {
  std::vector<gcs::GroupView> views;
  std::vector<std::string> messages;
  std::unique_ptr<gcs::Client> client;

  explicit Member(const std::string& name) {
    gcs::ClientCallbacks cb;
    cb.on_membership = [this](const gcs::GroupView& v) {
      if (!v.transitional) views.push_back(v);
    };
    cb.on_message = [this](const gcs::GroupMessage& m) {
      messages.emplace_back(m.payload.begin(), m.payload.end());
    };
    client = std::make_unique<gcs::Client>(name, std::move(cb));
  }
};

struct GroupMembershipTest : ::testing::Test {
  GcsCluster c{3};
  std::vector<std::unique_ptr<Member>> members;

  void SetUp() override {
    c.start_all();
    c.run(sim::seconds(5.0));
    for (std::size_t i = 0; i < c.daemons.size(); ++i) {
      auto m = std::make_unique<Member>("m" + std::to_string(i));
      ASSERT_TRUE(m->client->connect(*c.daemons[i]));
      members.push_back(std::move(m));
    }
  }
};

TEST_F(GroupMembershipTest, JoinDeliversViewToJoiner) {
  members[0]->client->join("g");
  c.run(sim::seconds(1.0));
  ASSERT_EQ(members[0]->views.size(), 1u);
  EXPECT_EQ(members[0]->views[0].reason, gcs::GroupChangeReason::kJoin);
  EXPECT_EQ(members[0]->views[0].members.size(), 1u);
}

TEST_F(GroupMembershipTest, SecondJoinNotifiesBoth) {
  members[0]->client->join("g");
  c.run(sim::seconds(1.0));
  members[1]->client->join("g");
  c.run(sim::seconds(1.0));
  ASSERT_EQ(members[0]->views.size(), 2u);
  EXPECT_EQ(members[0]->views[1].members.size(), 2u);
  ASSERT_EQ(members[1]->views.size(), 1u);
  EXPECT_EQ(members[1]->views[0].members.size(), 2u);
}

TEST_F(GroupMembershipTest, MemberListsIdenticalAndOrdered) {
  for (auto& m : members) m->client->join("g");
  c.run(sim::seconds(1.0));
  auto last0 = members[0]->views.back();
  EXPECT_EQ(last0.members.size(), 3u);
  for (auto& m : members) {
    auto last = m->views.back();
    ASSERT_EQ(last.members.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(last.members[i], last0.members[i]);
    }
  }
  // Ordered by daemon rank: daemon IPs ascend with index.
  EXPECT_EQ(last0.members[0].daemon, c.daemons[0]->id());
  EXPECT_EQ(last0.members[2].daemon, c.daemons[2]->id());
}

TEST_F(GroupMembershipTest, GracefulLeaveIsLightweight) {
  for (auto& m : members) m->client->join("g");
  c.run(sim::seconds(1.0));
  auto views_before = c.daemons[0]->counters().views_installed;
  members[2]->client->leave("g");
  c.run(sim::seconds(1.0));
  // No daemon membership reconfiguration happened (the paper's fast path).
  EXPECT_EQ(c.daemons[0]->counters().views_installed, views_before);
  auto last = members[0]->views.back();
  EXPECT_EQ(last.reason, gcs::GroupChangeReason::kLeave);
  EXPECT_EQ(last.members.size(), 2u);
}

TEST_F(GroupMembershipTest, DisconnectLeavesAllGroups) {
  for (auto& m : members) m->client->join("g");
  c.run(sim::seconds(1.0));
  members[2]->client->disconnect();
  c.run(sim::seconds(1.0));
  auto last = members[0]->views.back();
  EXPECT_EQ(last.members.size(), 2u);
}

TEST_F(GroupMembershipTest, NetworkFaultShrinksGroupView) {
  for (auto& m : members) m->client->join("g");
  c.run(sim::seconds(1.0));
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  auto last = members[0]->views.back();
  EXPECT_EQ(last.reason, gcs::GroupChangeReason::kNetwork);
  EXPECT_EQ(last.members.size(), 2u);
  // The isolated member sees a singleton group view.
  EXPECT_EQ(members[2]->views.back().members.size(), 1u);
}

TEST_F(GroupMembershipTest, MergeRestoresFullGroupView) {
  for (auto& m : members) m->client->join("g");
  c.run(sim::seconds(1.0));
  c.partition({{0}, {1, 2}});
  c.run(sim::seconds(5.0));
  c.merge();
  c.run(sim::seconds(5.0));
  for (auto& m : members) {
    EXPECT_EQ(m->views.back().members.size(), 3u);
  }
}

TEST_F(GroupMembershipTest, ViewChangeAndMessagesAreOrderedConsistently) {
  for (auto& m : members) m->client->join("g");
  c.run(sim::seconds(1.0));
  auto baseline0 = members[0]->views.size();
  auto baseline1 = members[1]->views.size();
  // Interleave a send with a leave; all remaining members must agree on
  // whether the message arrived before or after the view change. With
  // Agreed delivery, both sequences are identical at members 0 and 1.
  members[0]->client->multicast("g", util::Bytes{'x'});
  members[2]->client->leave("g");
  members[0]->client->multicast("g", util::Bytes{'y'});
  c.run(sim::seconds(1.0));
  EXPECT_EQ(members[0]->messages, members[1]->messages);
  // Exactly one view change (the leave) reached both remaining members.
  EXPECT_EQ(members[0]->views.size() - baseline0, 1u);
  EXPECT_EQ(members[1]->views.size() - baseline1, 1u);
}

TEST_F(GroupMembershipTest, GroupSeqIsMonotone) {
  for (auto& m : members) m->client->join("g");
  c.run(sim::seconds(1.0));
  members[1]->client->leave("g");
  c.run(sim::seconds(1.0));
  members[1]->client->join("g");
  c.run(sim::seconds(1.0));
  std::uint64_t prev = 0;
  for (const auto& v : members[0]->views) {
    EXPECT_GT(v.group_seq, prev);
    prev = v.group_seq;
  }
}

TEST_F(GroupMembershipTest, MultipleGroupsAreIndependent) {
  members[0]->client->join("g");
  members[1]->client->join("h");
  c.run(sim::seconds(1.0));
  members[0]->client->multicast("g", util::Bytes{'g'});
  members[1]->client->multicast("h", util::Bytes{'h'});
  c.run(sim::seconds(1.0));
  ASSERT_EQ(members[0]->messages.size(), 1u);
  EXPECT_EQ(members[0]->messages[0], "g");
  ASSERT_EQ(members[1]->messages.size(), 1u);
  EXPECT_EQ(members[1]->messages[0], "h");
}

}  // namespace
}  // namespace wam::testing
