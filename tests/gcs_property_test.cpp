// Randomized property test for the GCS: a cluster endures a random sequence
// of partitions, merges, NIC faults and recoveries while clients multicast.
// After every quiescent period the installed views must match the physical
// components, and the full delivery histories must satisfy Virtual
// Synchrony: between any two group views common to a pair of members, both
// delivered exactly the same message sequence.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "gcs_fixture.hpp"
#include "sim/random.hpp"

namespace wam::testing {
namespace {

constexpr int kN = 5;

struct ViewMark {
  std::uint64_t daemon_epoch;
  std::uint32_t coordinator;
  std::uint64_t group_seq;
  std::vector<gcs::MemberId> members;
  friend bool operator==(const ViewMark& a, const ViewMark& b) {
    return a.daemon_epoch == b.daemon_epoch &&
           a.coordinator == b.coordinator && a.group_seq == b.group_seq;
  }
};

using Event = std::variant<ViewMark, std::string>;

struct History {
  std::vector<Event> events;
  std::unique_ptr<gcs::Client> client;

  explicit History(const std::string& name) {
    gcs::ClientCallbacks cb;
    cb.on_membership = [this](const gcs::GroupView& v) {
      if (v.transitional) return;  // EVS signal, not a view installation
      events.push_back(ViewMark{v.daemon_view.epoch,
                                v.daemon_view.coordinator.value(), v.group_seq,
                                v.members});
    };
    cb.on_message = [this](const gcs::GroupMessage& m) {
      events.emplace_back(std::string(m.payload.begin(), m.payload.end()));
    };
    client = std::make_unique<gcs::Client>(name, std::move(cb));
  }
};

/// One delivered-in-view span: the view mark, the messages delivered while
/// it was current, and the mark that ended it (nullopt = end of history).
struct Span {
  ViewMark mark;
  std::vector<std::string> messages;
  std::optional<ViewMark> next;
};

std::vector<Span> spans_of(const std::vector<Event>& events) {
  std::vector<Span> out;
  for (const auto& ev : events) {
    if (std::holds_alternative<ViewMark>(ev)) {
      const auto& mark = std::get<ViewMark>(ev);
      if (!out.empty()) out.back().next = mark;
      out.push_back(Span{mark, {}, std::nullopt});
    } else if (!out.empty()) {
      out.back().messages.push_back(std::get<std::string>(ev));
    }
  }
  return out;
}

bool same_next(const std::optional<ViewMark>& a,
               const std::optional<ViewMark>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a.has_value() || *a == *b;
}

// Parameter: (seed, variant): 0 = sequencer+broadcast, 1 = token ring,
// 2 = multicast transport. The VS/agreement properties are engine- and
// transport-independent.
class GcsPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(GcsPropertyTest, RandomFaultLoadPreservesInvariants) {
  auto [seed, variant] = GetParam();
  sim::Rng rng(seed);
  auto config = gcs::Config::spread_tuned();
  if (variant == 1) config = config.with_token_ring();
  if (variant == 2) config = config.with_multicast();
  GcsCluster c(kN, config);
  c.start_all();
  c.run(sim::seconds(5.0));

  std::vector<std::unique_ptr<History>> hists;
  for (int i = 0; i < kN; ++i) {
    auto h = std::make_unique<History>("h" + std::to_string(i));
    ASSERT_TRUE(h->client->connect(*c.daemons[static_cast<std::size_t>(i)]));
    h->client->join("g");
    hists.push_back(std::move(h));
  }
  c.run(sim::seconds(1.0));

  int msg_counter = 0;
  for (int phase = 0; phase < 8; ++phase) {
    // Random component structure over all hosts.
    int k = static_cast<int>(rng.range(1, 3));
    std::vector<std::vector<int>> groups(static_cast<std::size_t>(k));
    for (int i = 0; i < kN; ++i) {
      groups[rng.below(static_cast<std::uint64_t>(k))].push_back(i);
    }
    // Drop empty groups.
    std::vector<std::vector<int>> nonempty;
    for (auto& g : groups) {
      if (!g.empty()) nonempty.push_back(g);
    }
    c.partition(nonempty);

    // Send some traffic mid-reconfiguration.
    for (int m = 0; m < 3; ++m) {
      int sender = static_cast<int>(rng.below(kN));
      if (hists[static_cast<std::size_t>(sender)]->client->connected()) {
        std::string text = "p" + std::to_string(phase) + "m" +
                           std::to_string(msg_counter++);
        hists[static_cast<std::size_t>(sender)]->client->multicast(
            "g", util::Bytes(text.begin(), text.end()));
      }
    }

    c.run(sim::seconds(8.0));  // quiesce (tuned timeouts: plenty)
    c.expect_views(nonempty, ("phase " + std::to_string(phase)).c_str());

    // Within each component, group views agree.
    for (const auto& group : nonempty) {
      const auto& lead_events =
          hists[static_cast<std::size_t>(group[0])]->events;
      ASSERT_FALSE(lead_events.empty());
      // Find the last view mark of the leader.
      const ViewMark* lead_mark = nullptr;
      for (auto it = lead_events.rbegin(); it != lead_events.rend(); ++it) {
        if (std::holds_alternative<ViewMark>(*it)) {
          lead_mark = &std::get<ViewMark>(*it);
          break;
        }
      }
      ASSERT_NE(lead_mark, nullptr);
      EXPECT_EQ(lead_mark->members.size(), group.size());
      for (int idx : group) {
        const auto& events = hists[static_cast<std::size_t>(idx)]->events;
        const ViewMark* mark = nullptr;
        for (auto it = events.rbegin(); it != events.rend(); ++it) {
          if (std::holds_alternative<ViewMark>(*it)) {
            mark = &std::get<ViewMark>(*it);
            break;
          }
        }
        ASSERT_NE(mark, nullptr);
        EXPECT_TRUE(*mark == *lead_mark)
            << "phase " << phase << ": member " << idx
            << " saw a different final group view";
      }
    }
  }

  c.merge();
  c.run(sim::seconds(8.0));
  c.expect_views({{0, 1, 2, 3, 4}}, "final merge");

  // Virtual Synchrony over the whole run: whenever two members shared a
  // group view AND transitioned out of it to the same next view (or both
  // ended the run in it), the messages they delivered in that view must be
  // identical. Members whose next views diverged moved to different
  // components, which VS does not constrain.
  for (int a = 0; a < kN; ++a) {
    for (int b = a + 1; b < kN; ++b) {
      auto spans_a = spans_of(hists[static_cast<std::size_t>(a)]->events);
      auto spans_b = spans_of(hists[static_cast<std::size_t>(b)]->events);
      for (const auto& sa : spans_a) {
        for (const auto& sb : spans_b) {
          if (!(sa.mark == sb.mark)) continue;
          if (!same_next(sa.next, sb.next)) continue;
          EXPECT_EQ(sa.messages, sb.messages)
              << "VS violation between members " << a << " and " << b
              << " in view epoch " << sa.mark.daemon_epoch << " gseq "
              << sa.mark.group_seq;
        }
      }
    }
  }

  // No duplicates anywhere.
  for (int i = 0; i < kN; ++i) {
    std::map<std::string, int> counts;
    for (const auto& ev : hists[static_cast<std::size_t>(i)]->events) {
      if (std::holds_alternative<std::string>(ev)) {
        ++counts[std::get<std::string>(ev)];
      }
    }
    for (const auto& [msg, count] : counts) {
      EXPECT_EQ(count, 1) << "member " << i << " saw " << msg << " " << count
                          << " times";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByVariant, GcsPropertyTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace wam::testing
