// Two pins around BALANCE/ALLOC handling.
//
// 1. MemberId equality ignores the informational name: BALANCE_MSGs carry
//    bare (daemon ip, client id) owner pairs, and the daemon reconstructs
//    MemberIds with an empty name. If the name ever joined the identity,
//    every daemon would conclude "not me" for every allocation entry and
//    drop all its addresses on the next balance round.
//
// 2. A BALANCE whose allocation omits a configured group (version-skewed
//    or buggy representative) must not silently drop that group's
//    coverage: omitted groups keep their present owner.
#include <gtest/gtest.h>

#include <memory>

#include "apps/cluster_scenario.hpp"
#include "gcs/client.hpp"
#include "wackamole/wire.hpp"

namespace wam::wackamole {
namespace {

TEST(MemberId, EqualityIgnoresInformationalName) {
  gcs::DaemonId d(net::Ipv4Address(10, 0, 0, 1));
  gcs::MemberId a{d, 1, "wackamole"};
  gcs::MemberId b{d, 1, ""};
  gcs::MemberId c{d, 2, "wackamole"};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_NE(a, c);
  gcs::MemberId other{gcs::DaemonId(net::Ipv4Address(10, 0, 0, 2)), 1,
                      "wackamole"};
  EXPECT_NE(a, other);
}

struct BalanceOmitTest : ::testing::Test {
  apps::ClusterOptions opt;
  std::unique_ptr<apps::ClusterScenario> s;

  void SetUp() override {
    opt.num_servers = 3;
    opt.num_vips = 6;
    opt.with_router = false;
    s = std::make_unique<apps::ClusterScenario>(opt);
    s->start();
    ASSERT_TRUE(s->run_until_stable(sim::seconds(10.0)));
    s->wam(0).trigger_balance();
    s->run(sim::seconds(1.0));
    ASSERT_TRUE(s->coverage_exactly_once(s->all_servers()));
  }

  /// Multicast a BALANCE_MSG into the wackamole group from a connected,
  /// non-member injector client — the version-skewed-peer vector.
  void inject(const BalanceMsg& msg) {
    gcs::Client injector("injector", gcs::ClientCallbacks{});
    ASSERT_TRUE(injector.connect(s->gcs_daemon(0)));
    injector.multicast(s->wam(0).config().group, encode_balance(msg));
    s->run(sim::seconds(2.0));
    injector.disconnect();
  }
};

TEST_F(BalanceOmitTest, OmittedGroupKeepsItsOwnerAndCoverage) {
  const auto& groups = s->wam(0).config().vip_groups;
  ASSERT_GE(groups.size(), 2u);
  const std::string omitted = groups.front().name;
  auto before = s->wam(0).table().owner(omitted);
  ASSERT_TRUE(before.has_value());

  // Re-assert every current owner except the omitted group's.
  BalanceMsg msg;
  msg.view = ViewTag::of(*s->wam(0).view());
  for (const auto& g : groups) {
    if (g.name == omitted) continue;
    auto owner = s->wam(0).table().owner(g.name);
    ASSERT_TRUE(owner.has_value()) << g.name;
    msg.allocation.emplace_back(
        g.name, std::make_pair(owner->daemon.value(), owner->client));
  }
  inject(msg);

  // The omission must not have moved or dropped anything.
  EXPECT_TRUE(s->coverage_exactly_once(s->all_servers()));
  auto after = s->wam(0).table().owner(omitted);
  ASSERT_TRUE(after.has_value())
      << "omitted group lost its owner — coverage silently dropped";
  EXPECT_EQ(*after, *before);
}

TEST_F(BalanceOmitTest, ReassignmentStillAppliesForListedGroups) {
  // Same skewed message, but one listed group is explicitly moved to
  // another server: the move must apply even while omissions are ignored.
  const auto& groups = s->wam(0).config().vip_groups;
  const std::string omitted = groups.front().name;
  const std::string moved = groups.back().name;
  ASSERT_NE(omitted, moved);
  auto old_owner = s->wam(0).table().owner(moved);
  ASSERT_TRUE(old_owner.has_value());
  // Pick a different server as the new owner.
  gcs::MemberId new_owner = *old_owner;
  for (int i = 0; i < opt.num_servers; ++i) {
    auto self = s->wam(i).self();
    ASSERT_TRUE(self.has_value());
    if (!(*self == *old_owner)) {
      new_owner = *self;
      break;
    }
  }
  ASSERT_NE(new_owner, *old_owner);

  BalanceMsg msg;
  msg.view = ViewTag::of(*s->wam(0).view());
  for (const auto& g : groups) {
    if (g.name == omitted) continue;
    auto owner = g.name == moved ? new_owner : *s->wam(0).table().owner(g.name);
    msg.allocation.emplace_back(
        g.name, std::make_pair(owner.daemon.value(), owner.client));
  }
  inject(msg);

  EXPECT_TRUE(s->coverage_exactly_once(s->all_servers()));
  auto now_owner = s->wam(0).table().owner(moved);
  ASSERT_TRUE(now_owner.has_value());
  EXPECT_EQ(*now_owner, new_owner);
}

}  // namespace
}  // namespace wam::wackamole
