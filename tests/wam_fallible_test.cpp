// The fallible enforcement layer: acquire retry/backoff schedules, the
// NOTIFY self-fence protocol (fence, targeted reallocation at the peers,
// cooldown probe, quarantine clear) and the PanicRelease observability
// event. Algorithm-level tests use RecordingIpManager with scripted
// results for exact op-sequence and backoff-timing assertions; end-to-end
// tests drive a ClusterScenario through the FaultyIpManager decorator.
#include <gtest/gtest.h>

#include "apps/cluster_scenario.hpp"
#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

using wackamole::OsOpResult;

/// test_config(1) with deterministic backoff (no jitter, 100 ms base).
wackamole::Config fallible_config(int vips = 1) {
  auto c = test_config(vips);
  c.backoff_jitter = 0.0;
  c.acquire_backoff = sim::milliseconds(100);
  c.acquire_backoff_max = sim::seconds(2.0);
  c.acquire_retry_limit = 4;
  return c;
}

TEST(WamFallible, RetryBackoffScheduleIsExponential) {
  WamCluster c(1, fallible_config());
  auto& mgr = *c.ipmgrs[0];
  mgr.push_result(OsOpResult::failed("ebusy"));
  mgr.push_result(OsOpResult::failed("ebusy"));
  c.start_wam();

  // Step in 1 ms ticks until the op count reaches `n`, returning the time.
  auto when_ops = [&](std::size_t n, sim::Duration limit) {
    auto deadline = c.sched.now() + limit;
    while (mgr.ops().size() < n && c.sched.now() < deadline) {
      c.run(sim::milliseconds(1));
    }
    EXPECT_GE(mgr.ops().size(), n) << "timed out waiting for op " << n;
    return c.sched.now();
  };
  auto t1 = when_ops(1, sim::seconds(30.0));  // initial acquire fails
  auto t2 = when_ops(2, sim::seconds(1.0));   // retry #1
  auto t3 = when_ops(3, sim::seconds(1.0));   // retry #2 succeeds

  // Jitter disabled: the schedule is exactly base, 2*base (+- the 1 ms
  // stepping granularity).
  EXPECT_NEAR(sim::to_millis(t2 - t1), 100.0, 2.0);
  EXPECT_NEAR(sim::to_millis(t3 - t2), 200.0, 2.0);
  EXPECT_EQ(mgr.ops(),
            (std::vector<std::string>{"acquire 10.0.0.100 [failed]",
                                      "acquire 10.0.0.100 [failed]",
                                      "acquire 10.0.0.100"}));
  EXPECT_TRUE(mgr.holds("10.0.0.100"));
  EXPECT_EQ(c.wams[0]->counters().acquire_failures.value(), 2u);
  EXPECT_EQ(c.wams[0]->counters().acquire_retries.value(), 2u);
  EXPECT_EQ(c.wams[0]->counters().groups_fenced.value(), 0u);
  EXPECT_FALSE(c.wams[0]->quarantined("10.0.0.100"));
}

/// Step `c` in 10 ms ticks until `done()` or `limit` elapses.
template <typename Pred>
bool run_until(WamCluster& c, Pred done, sim::Duration limit) {
  auto deadline = c.sched.now() + limit;
  while (!done() && c.sched.now() < deadline) {
    c.run(sim::milliseconds(10));
  }
  return done();
}

// Bring up a 3-daemon cluster where s2 holds the single group, s1 has an
// empty op queue and owns nothing, and everyone is settled in RUN. A later
// graceful shutdown of s2 then creates one hole that the deterministic
// reallocation hands to s1 (first in membership order) — the exact moment
// the scripted failures in s1's queue start firing, with no join churn
// consuming them first.
void settle_with_s2_holding(WamCluster& c) {
  c.start_all();
  c.wams[1]->start();
  c.wams[2]->start();
  c.run(sim::seconds(5.0));
  ASSERT_TRUE(c.ipmgrs[1]->holds("10.0.0.100"));
  c.wams[0]->start();  // joins; s2's claim leaves no hole for s1
  c.run(sim::seconds(3.0));
  ASSERT_TRUE(c.ipmgrs[0]->ops().empty());
}

TEST(WamFallible, BudgetExhaustionFencesAndPeerTakesOver) {
  auto config = fallible_config();
  config.quarantine_cooldown = sim::seconds(5.0);
  WamCluster c(3, config);
  settle_with_s2_holding(c);
  // 4 scripted failures = the full retry budget: initial + 3 retries.
  for (int i = 0; i < 4; ++i) {
    c.ipmgrs[0]->push_result(OsOpResult::failed("ebusy"));
  }
  c.wams[1]->graceful_shutdown();  // the hole lands on s1, whose OS is sick
  ASSERT_TRUE(run_until(
      c, [&] { return c.wams[0]->counters().groups_fenced.value() >= 1; },
      sim::seconds(10.0)));
  c.run(sim::seconds(0.5));  // let the NOTIFY-triggered realloc land

  EXPECT_TRUE(c.wams[0]->quarantined("10.0.0.100"));
  EXPECT_FALSE(c.ipmgrs[0]->holds("10.0.0.100"));
  EXPECT_TRUE(c.ipmgrs[2]->holds("10.0.0.100"))
      << "NOTIFY must migrate coverage to the healthy peer";
  EXPECT_EQ(c.wams[0]->counters().groups_fenced.value(), 1u);
  EXPECT_EQ(c.wams[0]->counters().acquire_failures.value(), 4u);
  EXPECT_GE(c.wams[0]->counters().notifies_sent.value(), 1u);
  EXPECT_GE(c.wams[2]->counters().notifies_received.value(), 1u);

  // Cooldown: the probe (an announce, since the peer owns the group now)
  // succeeds — the fault was transient — and the quarantine clears.
  c.run(sim::seconds(6.0));
  EXPECT_FALSE(c.wams[0]->quarantined("10.0.0.100"));
  EXPECT_EQ(c.wams[0]->counters().groups_unfenced.value(), 1u);
  EXPECT_TRUE(c.ipmgrs[2]->holds("10.0.0.100"));  // no churn on clear

  // After the clear the member is eligible again: lose the current holder
  // and the group must come back to the once-fenced server.
  c.daemons[2]->stop();
  c.run(sim::seconds(10.0));
  EXPECT_TRUE(c.ipmgrs[0]->holds("10.0.0.100"));
  EXPECT_EQ(c.holders("10.0.0.100", {0, 1, 2}), 1);
}

TEST(WamFallible, QuarantineSticksWhileProbeKeepsFailing) {
  auto config = fallible_config();
  config.quarantine_cooldown = sim::seconds(2.0);
  WamCluster c(3, config);
  settle_with_s2_holding(c);
  // The scripted FIFO is shared across op kinds: 4 failures exhaust the
  // acquire budget, the 5th feeds the fence's partial-state release, and
  // the last two keep the first two cooldown announce-probes failing.
  for (int i = 0; i < 7; ++i) {
    c.ipmgrs[0]->push_result(OsOpResult::failed("ebusy"));
  }
  c.wams[1]->graceful_shutdown();
  ASSERT_TRUE(run_until(
      c, [&] { return c.wams[0]->counters().groups_fenced.value() >= 1; },
      sim::seconds(10.0)));

  c.run(sim::seconds(5.0));  // two cooldown probes, both scripted to fail
  EXPECT_TRUE(c.wams[0]->quarantined("10.0.0.100"));
  EXPECT_EQ(c.wams[0]->counters().groups_unfenced.value(), 0u);
  EXPECT_TRUE(c.ipmgrs[2]->holds("10.0.0.100"));

  // Once the queue drains, the next probe succeeds and the fence lifts.
  ASSERT_TRUE(run_until(
      c, [&] { return !c.wams[0]->quarantined("10.0.0.100"); },
      sim::seconds(20.0)));
  EXPECT_EQ(c.wams[0]->counters().groups_unfenced.value(), 1u);
}

TEST(WamFallible, StickyFaultEndToEndMigratesAndRejoins) {
  apps::ClusterOptions opt;
  opt.num_servers = 3;
  opt.num_vips = 3;  // one VIP each after stabilization
  opt.with_router = false;
  opt.quarantine_cooldown = sim::seconds(2.0);
  apps::ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(30.0)));
  ASSERT_TRUE(s.coverage_exactly_once(s.all_servers()));

  // All VIPs settle on server1 (the first joiner's singleton group view
  // claims everything, and without a balance round claims stick). Kill
  // server2's enforcement layer, then vacate server1: every hole lands on
  // server2 (first in remaining membership order), whose acquires all
  // fail — it fences the lot and NOTIFY migrates coverage to server3.
  s.set_os_fail_sticky(1);
  s.graceful_leave(0);
  s.run(sim::seconds(8.0));

  ASSERT_FALSE(s.wam(1).quarantined_groups().empty());
  EXPECT_GE(s.wam(1).counters().groups_fenced.value(), 1u);
  EXPECT_TRUE(s.coverage_exactly_once({1, 2}))
      << "fenced groups must be re-covered by the healthy peer";
  EXPECT_GE(s.timeline.count(obs::EventType::kGroupFenced), 1u);

  // Heal: the cooldown probes now succeed and the quarantines clear.
  s.heal_os(1);
  s.run(sim::seconds(5.0));
  EXPECT_TRUE(s.wam(1).quarantined_groups().empty());
  EXPECT_GE(s.timeline.count(obs::EventType::kGroupUnfenced), 1u);
  EXPECT_TRUE(s.coverage_exactly_once({1, 2}));
}

TEST(WamFallible, PanicReleaseEventCarriesCause) {
  apps::ClusterOptions opt;
  opt.num_servers = 3;
  opt.num_vips = 3;
  opt.with_router = false;
  apps::ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(30.0)));

  auto panic_with_cause = [&](const char* cause) {
    for (const auto& e : s.timeline.events()) {
      if (e.type != obs::EventType::kPanicRelease) continue;
      const auto* c = e.field("cause");
      if (c && *c == cause) return true;
    }
    return false;
  };

  s.crash_daemon(0);  // GCS loss: release everything at once (§4.2)
  s.run(sim::seconds(2.0));
  ASSERT_GE(s.timeline.count(obs::EventType::kPanicRelease), 1u);
  EXPECT_TRUE(panic_with_cause("gcs_disconnect"))
      << "PanicRelease must name its triggering cause";

  s.graceful_leave(1);
  s.run(sim::seconds(1.0));
  EXPECT_TRUE(panic_with_cause("graceful_shutdown"));
}

}  // namespace
}  // namespace wam::testing
