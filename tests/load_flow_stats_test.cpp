// FlowStats pins: 64-bit bucket math, failover-window edge clamping, and
// the shard-merge path (set_origin grid pinning + merge exactness against
// a single-stream reference).
#include "load/flow_stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace wam::load {
namespace {

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint(sim::milliseconds(ms));
}

TEST(FlowStats, BucketStartsStay64Bit) {
  // A long high-rate run walks far past 2^31 bucket-width multiples; each
  // bucket start must still land exactly on origin + i * width.
  FlowStats stats(sim::milliseconds(100));
  stats.on_offered(at_ms(0));
  const std::int64_t far_ms = 3'000'000'000;  // ~34.7 simulated days
  stats.on_offered(sim::TimePoint(sim::milliseconds(far_ms)));
  const auto& timeline = stats.timeline();
  ASSERT_FALSE(timeline.empty());
  const auto idx = timeline.size() - 1;
  EXPECT_EQ(timeline[idx].start,
            at_ms(0) + sim::milliseconds(100) * static_cast<std::int64_t>(idx));
  EXPECT_EQ(timeline[idx].offered, 1u);
}

TEST(FlowStats, FailoverWindowClampsAtOrigin) {
  // An event marked less than one window after the origin must clamp its
  // "before" side at the grid origin instead of reaching into negative
  // time (where the int-truncated math used to misfile buckets).
  FlowStats stats(sim::milliseconds(100));
  stats.set_origin(at_ms(0));
  for (int i = 0; i < 10; ++i) {
    stats.on_offered(at_ms(i * 100));
    stats.on_response(at_ms(i * 100), sim::milliseconds(2));
  }
  stats.mark_event(at_ms(300), "early fault");
  auto windows = stats.failover_windows(sim::seconds(5.0));
  ASSERT_EQ(windows.size(), 1u);
  // Only buckets in [0, 300) count as "before": 3 of them.
  EXPECT_EQ(windows.front().offered_before, 3u);
  EXPECT_EQ(windows.front().offered_after, 7u);
}

TEST(FlowStats, SetOriginPinsTheGrid) {
  FlowStats stats(sim::milliseconds(100));
  stats.set_origin(at_ms(500));
  stats.on_offered(at_ms(730));
  ASSERT_EQ(stats.timeline().size(), 3u);
  EXPECT_EQ(stats.timeline()[0].start, at_ms(500));
  EXPECT_EQ(stats.timeline()[2].start, at_ms(700));
  EXPECT_EQ(stats.timeline()[2].offered, 1u);
}

TEST(FlowStats, MarkEventBeforeSetOriginIsWellDefined) {
  // A fail-over can be marked before the grid origin is pinned (the
  // scenario wires its fault hooks before the generator starts); the mark
  // must not disturb the grid and must still clamp at the origin.
  FlowStats stats(sim::milliseconds(100));
  stats.mark_event(at_ms(300), "early fault");
  stats.set_origin(at_ms(0));
  for (int i = 0; i < 10; ++i) {
    stats.on_offered(at_ms(i * 100));
    stats.on_response(at_ms(i * 100), sim::milliseconds(2));
  }
  EXPECT_EQ(stats.timeline()[0].start, at_ms(0));
  auto windows = stats.failover_windows(sim::seconds(5.0));
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows.front().offered_before, 3u);
  EXPECT_EQ(windows.front().offered_after, 7u);
}

TEST(FlowStats, MarkEventsSortStablyAndSkipExactDuplicates) {
  FlowStats stats(sim::milliseconds(100));
  stats.set_origin(at_ms(0));
  stats.on_offered(at_ms(10));
  stats.mark_event(at_ms(500), "b");
  stats.mark_event(at_ms(200), "a");   // out of order: sorted in front
  stats.mark_event(at_ms(500), "b");   // exact duplicate: skipped
  stats.mark_event(at_ms(500), "c");   // same tick, new label: kept after b
  auto windows = stats.failover_windows(sim::seconds(1.0));
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].label, "a");
  EXPECT_EQ(windows[1].label, "b");
  EXPECT_EQ(windows[2].label, "c");
}

/// Feed the same request timeline either into one FlowStats or split
/// round-robin over `ways` instances that are then merged; every derived
/// statistic must agree exactly.
struct Record {
  std::int64_t ms;
  int kind;  // 0=offered 1=response 2=lost 3=retry
  std::int64_t rtt_us;
};

std::vector<Record> sample_timeline() {
  std::vector<Record> recs;
  for (int i = 0; i < 400; ++i) {
    const std::int64_t t = 10 + i * 7;
    recs.push_back({t, 0, 0});
    if (i % 5 == 4) {
      recs.push_back({t + 40, 2, 0});  // one in five lost
    } else {
      recs.push_back({t + 3, 1, 900 + (i % 17) * 110});
    }
    if (i % 11 == 0) recs.push_back({t + 20, 3, 0});
  }
  return recs;
}

void apply(FlowStats& stats, const Record& r) {
  switch (r.kind) {
    case 0: stats.on_offered(at_ms(r.ms)); break;
    case 1:
      stats.on_response(at_ms(r.ms), sim::microseconds(r.rtt_us));
      break;
    case 2: stats.on_lost(at_ms(r.ms)); break;
    default: stats.on_retry(at_ms(r.ms)); break;
  }
}

TEST(FlowStatsMerge, ShardedMergeMatchesSingleStream) {
  const auto recs = sample_timeline();
  FlowStats single(sim::milliseconds(100));
  single.set_origin(at_ms(0));
  single.mark_event(at_ms(1500), "fault");
  for (const auto& r : recs) apply(single, r);

  for (int ways = 2; ways <= 4; ++ways) {
    std::vector<FlowStats> parts(static_cast<std::size_t>(ways),
                                 FlowStats(sim::milliseconds(100)));
    for (auto& p : parts) p.set_origin(at_ms(0));
    parts[0].mark_event(at_ms(1500), "fault");
    for (std::size_t i = 0; i < recs.size(); ++i) {
      apply(parts[i % static_cast<std::size_t>(ways)], recs[i]);
    }
    FlowStats merged = parts[0];
    for (int w = 1; w < ways; ++w) merged.merge(parts[static_cast<std::size_t>(w)]);

    EXPECT_EQ(merged.offered(), single.offered()) << ways;
    EXPECT_EQ(merged.answered(), single.answered()) << ways;
    EXPECT_EQ(merged.lost(), single.lost()) << ways;
    EXPECT_EQ(merged.retries(), single.retries()) << ways;
    EXPECT_DOUBLE_EQ(merged.availability(), single.availability()) << ways;
    EXPECT_DOUBLE_EQ(merged.effective_downtime_seconds(),
                     single.effective_downtime_seconds())
        << ways;
    EXPECT_EQ(merged.longest_response_gap(), single.longest_response_gap())
        << ways;
    ASSERT_EQ(merged.timeline().size(), single.timeline().size()) << ways;
    for (std::size_t b = 0; b < merged.timeline().size(); ++b) {
      EXPECT_EQ(merged.timeline()[b].start, single.timeline()[b].start);
      EXPECT_EQ(merged.timeline()[b].offered, single.timeline()[b].offered);
      EXPECT_EQ(merged.timeline()[b].answered, single.timeline()[b].answered);
      EXPECT_EQ(merged.timeline()[b].lost, single.timeline()[b].lost);
      EXPECT_EQ(merged.timeline()[b].retries, single.timeline()[b].retries);
    }
    auto mw = merged.failover_windows(sim::seconds(1.0));
    auto sw = single.failover_windows(sim::seconds(1.0));
    ASSERT_EQ(mw.size(), sw.size());
    EXPECT_EQ(mw.front().offered_before, sw.front().offered_before);
    EXPECT_EQ(mw.front().offered_after, sw.front().offered_after);
    EXPECT_EQ(mw.front().lost_after, sw.front().lost_after);
    EXPECT_DOUBLE_EQ(mw.front().p99_before, sw.front().p99_before);
    EXPECT_DOUBLE_EQ(mw.front().p99_after, sw.front().p99_after);
  }
}

TEST(FlowStatsMerge, RebasesLaterOriginOntoEarlierGrid) {
  FlowStats a(sim::milliseconds(100));
  a.set_origin(at_ms(300));  // later origin, will be rebased
  a.on_offered(at_ms(450));
  FlowStats b(sim::milliseconds(100));
  b.set_origin(at_ms(0));
  b.on_offered(at_ms(50));
  a.merge(b);
  ASSERT_GE(a.timeline().size(), 5u);
  EXPECT_EQ(a.timeline()[0].start, at_ms(0));
  EXPECT_EQ(a.timeline()[0].offered, 1u);   // b's early request
  EXPECT_EQ(a.timeline()[4].start, at_ms(400));
  EXPECT_EQ(a.timeline()[4].offered, 1u);   // a's request, kept in place
  EXPECT_EQ(a.offered(), 2u);
}

TEST(FlowStatsMerge, MisalignedGridsAreRejected) {
  FlowStats a(sim::milliseconds(100));
  a.set_origin(at_ms(0));
  a.on_offered(at_ms(10));
  FlowStats b(sim::milliseconds(100));
  b.set_origin(at_ms(150));  // half a bucket off a's grid
  b.on_offered(at_ms(160));
  EXPECT_THROW(a.merge(b), util::ContractViolation);
}

}  // namespace
}  // namespace wam::load
