#include "apps/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wam::apps {
namespace {

TEST(ScenarioParse, HeaderDirectives) {
  auto p = parse_scenario(
      "servers 5\nvips 7\ngcs default\nbalance 45\nrun 90\n");
  EXPECT_EQ(p.options.num_servers, 5);
  EXPECT_EQ(p.options.num_vips, 7);
  EXPECT_EQ(sim::to_seconds(p.options.gcs.fault_detection_timeout), 5.0);
  EXPECT_EQ(sim::to_seconds(p.options.balance_timeout), 45.0);
  EXPECT_EQ(sim::to_seconds(p.run_until), 90.0);
}

TEST(ScenarioParse, CommentsAndBlanksIgnored) {
  auto p = parse_scenario("# hello\n\n   \nservers 2 # trailing\n");
  EXPECT_EQ(p.options.num_servers, 2);
  EXPECT_TRUE(p.actions.empty());
}

TEST(ScenarioParse, Actions) {
  auto p = parse_scenario(
      "servers 4\n"
      "at 5 disconnect server2\n"
      "at 6 reconnect server2\n"
      "at 7 leave server3\n"
      "at 8 partition server1,server2 | server3,server4\n"
      "at 9 merge\n"
      "at 10 balance\n"
      "at 11 status server1\n"
      "at 12 coverage\n"
      "run 20\n");
  ASSERT_EQ(p.actions.size(), 8u);
  EXPECT_EQ(p.actions[0].verb, "disconnect");
  EXPECT_EQ(p.actions[0].servers, (std::vector<int>{1}));
  EXPECT_EQ(p.actions[3].verb, "partition");
  ASSERT_EQ(p.actions[3].groups.size(), 2u);
  EXPECT_EQ(p.actions[3].groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(p.actions[3].groups[1], (std::vector<int>{2, 3}));
}

TEST(ScenarioParse, DefaultRunPastLastAction) {
  auto p = parse_scenario("servers 2\nat 42 merge\n");
  EXPECT_EQ(sim::to_seconds(p.run_until), 52.0);
}

TEST(ScenarioParse, Errors) {
  EXPECT_THROW(parse_scenario("bogus 3\n"), ScriptError);
  EXPECT_THROW(parse_scenario("servers 0\n"), ScriptError);
  EXPECT_THROW(parse_scenario("servers 2\nat 5 disconnect server9\n"),
               ScriptError);
  EXPECT_THROW(parse_scenario("servers 2\nat 5 explode server1\n"),
               ScriptError);
  EXPECT_THROW(parse_scenario("servers 2\nat 5 partition server1\n"),
               ScriptError);
  EXPECT_THROW(parse_scenario("servers 2\nat 5 disconnect notaserver\n"),
               ScriptError);
  EXPECT_THROW(parse_scenario("gcs sideways\n"), ScriptError);
  EXPECT_THROW(parse_scenario("run -5\n"), ScriptError);
}

TEST(ScenarioRun, FaultAndRecoveryEndsConsistent) {
  std::ostringstream out;
  bool ok = run_scenario(
      "servers 3\nvips 6\ngcs tuned\n"
      "at 3 disconnect server2\n"
      "at 10 reconnect server2\n"
      "at 18 balance\n"
      "run 25\n",
      out);
  EXPECT_TRUE(ok) << out.str();
  EXPECT_NE(out.str().find("exactly-once over reachable servers: OK"),
            std::string::npos);
}

TEST(ScenarioRun, CoverageReportNamesOwners) {
  std::ostringstream out;
  bool ok = run_scenario("servers 2\nvips 2\nat 3 coverage\nrun 6\n", out);
  EXPECT_TRUE(ok);
  EXPECT_NE(out.str().find("10.0.0.100 -> server"), std::string::npos);
}

TEST(ScenarioRun, LeaveShrinksReachableSet) {
  std::ostringstream out;
  bool ok = run_scenario(
      "servers 3\nvips 4\nat 3 leave server3\nrun 10\n", out);
  EXPECT_TRUE(ok) << out.str();
}

TEST(ScenarioRun, StatusRendersState) {
  std::ostringstream out;
  run_scenario("servers 2\nvips 2\nat 3 status server1\nrun 6\n", out);
  EXPECT_NE(out.str().find("state: RUN"), std::string::npos);
}

}  // namespace
}  // namespace wam::apps
