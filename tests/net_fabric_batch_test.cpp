// Fabric::send_batch pins: same-seed batched injection must reproduce the
// unbatched path's per-host delivery order byte-for-byte, with identical
// counter accounting, while coalescing each receiver's frames into one
// delivery event at the latest computed arrival.
#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace wam::net {
namespace {

// A small LAN that records, per NIC, the payload bytes in delivery order
// and the virtual delivery times.
struct Lan {
  sim::Scheduler sched;
  Fabric fabric;
  SegmentId seg;
  std::vector<NicId> nics;
  std::vector<std::vector<std::string>> inbox;
  std::vector<std::vector<sim::TimePoint>> times;

  explicit Lan(std::uint64_t seed, Fabric::SegmentConfig config)
      : fabric(sched, nullptr, seed), seg(fabric.add_segment(config)) {}

  NicId attach() {
    auto idx = inbox.size();
    inbox.emplace_back();
    times.emplace_back();
    NicId id = fabric.attach(seg, fabric.allocate_mac(),
                             [this, idx](const Frame& f, NicId) {
                               inbox[idx].emplace_back(f.payload.begin(),
                                                       f.payload.end());
                               times[idx].push_back(sched.now());
                             });
    nics.push_back(id);
    return id;
  }

  Frame frame(NicId from, MacAddress dst, std::uint8_t tag) {
    return Frame{fabric.mac_of(from), dst, EtherType::kIpv4, {tag}};
  }
};

// The workload both runs share: unicasts to every peer (some down, some
// partitioned away, one direction-blocked), plus broadcasts, interleaved.
std::vector<Frame> make_workload(Lan& lan, int count) {
  std::vector<Frame> frames;
  for (int i = 0; i < count; ++i) {
    auto tag = static_cast<std::uint8_t>(i);
    NicId to = lan.nics[1 + static_cast<std::size_t>(i) % 4];
    frames.push_back(lan.frame(lan.nics[0], lan.fabric.mac_of(to), tag));
    if (i % 5 == 0) {
      frames.push_back(
          lan.frame(lan.nics[0], MacAddress::broadcast(), tag));
    }
  }
  return frames;
}

void apply_faults(Lan& lan) {
  lan.fabric.set_nic_up(lan.nics[2], false);
  lan.fabric.set_partition(lan.seg, {{lan.nics[0], lan.nics[1], lan.nics[2],
                                      lan.nics[3]},
                                     {lan.nics[4]}});
  lan.fabric.block_direction(lan.nics[0], lan.nics[3]);
}

struct RunResult {
  std::vector<std::vector<std::string>> inbox;
  std::vector<std::vector<sim::TimePoint>> times;
  std::uint64_t sent, delivered, no_target, partition, nic_down, random,
      directional;
};

RunResult run(std::uint64_t seed, bool batched, double drop, int count) {
  Fabric::SegmentConfig config;
  config.jitter = sim::microseconds(30);
  config.drop_probability = drop;
  Lan lan(seed, config);
  for (int i = 0; i < 5; ++i) lan.attach();
  apply_faults(lan);
  auto frames = make_workload(lan, count);
  if (batched) {
    lan.fabric.send_batch(lan.nics[0], std::move(frames));
  } else {
    for (auto& f : frames) lan.fabric.send(lan.nics[0], std::move(f));
  }
  lan.sched.run_all();
  const auto& c = lan.fabric.counters();
  return {lan.inbox,
          lan.times,
          c.frames_sent,
          c.frames_delivered,
          c.dropped_no_target,
          c.dropped_partition,
          c.dropped_nic_down,
          c.dropped_random,
          c.dropped_directional};
}

void expect_equivalent(const RunResult& plain, const RunResult& batch) {
  ASSERT_EQ(plain.inbox.size(), batch.inbox.size());
  for (std::size_t i = 0; i < plain.inbox.size(); ++i) {
    EXPECT_EQ(plain.inbox[i], batch.inbox[i]) << "nic " << i;
  }
  EXPECT_EQ(plain.sent, batch.sent);
  EXPECT_EQ(plain.delivered, batch.delivered);
  EXPECT_EQ(plain.no_target, batch.no_target);
  EXPECT_EQ(plain.partition, batch.partition);
  EXPECT_EQ(plain.nic_down, batch.nic_down);
  EXPECT_EQ(plain.random, batch.random);
  EXPECT_EQ(plain.directional, batch.directional);
}

TEST(FabricBatch, SameSeedDeliveryOrderMatchesUnbatched) {
  auto plain = run(42, false, 0.0, 40);
  auto batch = run(42, true, 0.0, 40);
  ASSERT_GT(plain.delivered, 0u);
  expect_equivalent(plain, batch);
}

TEST(FabricBatch, LossyRunDrawsIdenticalDropAndJitterSequence) {
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    auto plain = run(seed, false, 0.3, 60);
    auto batch = run(seed, true, 0.3, 60);
    ASSERT_GT(plain.random, 0u) << "seed " << seed;
    expect_equivalent(plain, batch);
  }
}

TEST(FabricBatch, ReceiverGetsOneEventAtLatestArrival) {
  // One receiver, jittered segment: unbatched deliveries spread out;
  // batched ones all land together at the latest unbatched arrival.
  auto one_receiver = [](bool batched) {
    Fabric::SegmentConfig config;
    config.jitter = sim::microseconds(200);
    Lan lan(5, config);
    for (int i = 0; i < 2; ++i) lan.attach();
    std::vector<Frame> frames;
    for (int i = 0; i < 8; ++i) {
      frames.push_back(lan.frame(lan.nics[0], lan.fabric.mac_of(lan.nics[1]),
                                 static_cast<std::uint8_t>(i)));
    }
    if (batched) {
      lan.fabric.send_batch(lan.nics[0], std::move(frames));
    } else {
      for (auto& f : frames) lan.fabric.send(lan.nics[0], std::move(f));
    }
    lan.sched.run_all();
    return lan.times[1];
  };
  auto plain_times = one_receiver(false);
  auto batch_times = one_receiver(true);
  ASSERT_EQ(plain_times.size(), 8u);
  ASSERT_EQ(batch_times.size(), 8u);
  sim::TimePoint latest = plain_times[0];
  for (auto t : plain_times) latest = std::max(latest, t);
  EXPECT_GT(latest, plain_times[0]) << "jitter should spread arrivals";
  for (auto t : batch_times) EXPECT_EQ(t, latest);
}

TEST(FabricBatch, EmptyBatchIsNoOp) {
  Lan lan(1, Fabric::SegmentConfig{});
  lan.attach();
  lan.fabric.send_batch(lan.nics[0], {});
  lan.sched.run_all();
  EXPECT_EQ(lan.fabric.counters().frames_sent, 0u);
}

TEST(FabricBatch, ReceiverDownAtDeliveryTimeDropsLate) {
  // The up-check at delivery time must re-run per frame, like send().
  Lan lan(1, Fabric::SegmentConfig{});
  lan.attach();
  lan.attach();
  std::vector<Frame> frames;
  frames.push_back(lan.frame(lan.nics[0], lan.fabric.mac_of(lan.nics[1]), 1));
  lan.fabric.send_batch(lan.nics[0], std::move(frames));
  lan.fabric.set_nic_up(lan.nics[1], false);  // down before delivery fires
  lan.sched.run_all();
  EXPECT_TRUE(lan.inbox[1].empty());
  EXPECT_EQ(lan.fabric.counters().frames_delivered, 0u);
}

}  // namespace
}  // namespace wam::net
