// Wire format v2: compact STATE/BALANCE/ALLOC bodies (per-message name
// table + varint indices). Pins round-trips, the v1<->v2 bridges, the
// cross-process determinism of the encoded bytes (sorted by NAME, never by
// process-local GroupId), version rejection by v1-only decoders, and the
// claimed size win over the v1 encodings.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "wackamole/group_ids.hpp"
#include "wackamole/wire.hpp"

namespace wam::wackamole {
namespace {

StateMsgV2 sample_state() {
  StateMsgV2 m;
  m.view = ViewTag{7, 0x0a000001, 42};
  m.mature = true;
  m.weight = 3;
  // Overlapping lists: the name table must dedup across all three.
  m.owned = {intern_group("vip-alpha"), intern_group("vip-beta"),
             intern_group("vip-gamma")};
  m.preferred = {intern_group("vip-beta"), intern_group("vip-delta")};
  m.quarantined = {intern_group("vip-alpha")};
  return m;
}

BalanceMsgV2 sample_balance() {
  BalanceMsgV2 m;
  m.view = ViewTag{9, 0x0a000002, 5};
  // Two distinct owners across four groups: the owner table dedupes.
  m.allocation = {
      {intern_group("vip-alpha"), {0x0a000001u, 1u}},
      {intern_group("vip-beta"), {0x0a000002u, 2u}},
      {intern_group("vip-delta"), {0x0a000001u, 1u}},
      {intern_group("vip-gamma"), {0x0a000002u, 2u}},
  };
  return m;
}

TEST(WamWireV2, StateRoundTrips) {
  auto m = sample_state();
  auto d = decode_state_v2(encode_state_v2(m));
  EXPECT_EQ(d.view, m.view);
  EXPECT_EQ(d.mature, m.mature);
  EXPECT_EQ(d.weight, m.weight);
  EXPECT_EQ(d.owned, m.owned);
  EXPECT_EQ(d.preferred, m.preferred);
  EXPECT_EQ(d.quarantined, m.quarantined);
}

TEST(WamWireV2, BalanceAndAllocRoundTrip) {
  auto m = sample_balance();
  auto db = decode_balance_v2(encode_balance_v2(m));
  EXPECT_EQ(db.view, m.view);
  EXPECT_EQ(db.allocation, m.allocation);
  auto da = decode_alloc_v2(encode_alloc_v2(m));
  EXPECT_EQ(da.allocation, m.allocation);
}

TEST(WamWireV2, PeekTypeSeesTheNewCodes) {
  EXPECT_EQ(peek_type(encode_state_v2(sample_state())), WamMsgType::kStateV2);
  EXPECT_EQ(peek_type(encode_balance_v2(sample_balance())),
            WamMsgType::kBalanceV2);
  EXPECT_EQ(peek_type(encode_alloc_v2(sample_balance())),
            WamMsgType::kAllocV2);
}

// A v1-only decoder fed v2 bytes must reject at the type byte with a clean
// DecodeError — new message CODES are the version mechanism.
TEST(WamWireV2, V1DecodersRejectV2Bytes) {
  auto state2 = encode_state_v2(sample_state());
  auto balance2 = encode_balance_v2(sample_balance());
  auto alloc2 = encode_alloc_v2(sample_balance());
  EXPECT_THROW((void)decode_state(state2), util::DecodeError);
  EXPECT_THROW((void)decode_balance(balance2), util::DecodeError);
  EXPECT_THROW((void)decode_alloc(alloc2), util::DecodeError);
  // ...and vice versa: a v2 decoder does not misparse v1 bytes.
  EXPECT_THROW((void)decode_state_v2(encode_state(to_v1(sample_state()))),
               util::DecodeError);
}

TEST(WamWireV2, BridgesRoundTripContentAndOrder) {
  auto m2 = sample_state();
  auto m1 = to_v1(m2);
  EXPECT_EQ(m1.owned,
            (std::vector<std::string>{"vip-alpha", "vip-beta", "vip-gamma"}));
  EXPECT_EQ(m1.preferred, (std::vector<std::string>{"vip-beta", "vip-delta"}));
  auto back = to_v2(m1);
  EXPECT_EQ(back.owned, m2.owned);
  EXPECT_EQ(back.preferred, m2.preferred);
  EXPECT_EQ(back.quarantined, m2.quarantined);

  auto b2 = sample_balance();
  auto b1 = to_v1(b2);
  ASSERT_EQ(b1.allocation.size(), b2.allocation.size());
  EXPECT_EQ(b1.allocation[0].first, "vip-alpha");
  EXPECT_EQ(b1.allocation[0].second, b2.allocation[0].second);
  EXPECT_EQ(to_v2(b1).allocation, b2.allocation);
}

// The encoded bytes must not depend on intern order (GroupIds are
// process-local and vary between processes): the name table lists names in
// first-appearance order over the message's LISTS, a pure function of the
// message content.
TEST(WamWireV2, BytesAreInternOrderIndependent) {
  // These names are interned here for the first time, in reverse name
  // order, giving them ids in the "wrong" relative order.
  auto z = intern_group("zz-order-probe");
  auto a = intern_group("aa-order-probe");
  ASSERT_LT(z, a) << "test setup: zz must have the smaller id";

  StateMsgV2 m;
  m.view = ViewTag{1, 0x0a000001, 1};
  m.owned = {a, z};
  auto bytes = encode_state_v2(m);

  // Decode resolves through the name table: ids come back in the order the
  // LIST encodes, which preserves the sender's list order.
  auto d = decode_state_v2(bytes);
  EXPECT_EQ(d.owned, m.owned);

  // The name-table region follows list order, not id order: "aa..."
  // appears first in the raw bytes even though its id is larger. Each
  // name appears exactly once.
  std::string raw(bytes.begin(), bytes.end());
  auto pos_a = raw.find("aa-order-probe");
  auto pos_z = raw.find("zz-order-probe");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_z, std::string::npos);
  EXPECT_LT(pos_a, pos_z);
  EXPECT_EQ(raw.find("aa-order-probe", pos_a + 1), std::string::npos);

  // Same content re-encoded -> identical bytes (what the simulation's
  // byte-identical replay checks rely on).
  EXPECT_EQ(encode_state_v2(m), bytes);
}

TEST(WamWireV2, CompactBodiesBeatV1AtScale) {
  // 64 members x 512 groups with realistic heap-allocated names: the
  // regime the compact format exists for.
  StateMsgV2 s;
  s.view = ViewTag{3, 0x0a000001, 7};
  BalanceMsgV2 b;
  b.view = s.view;
  for (int i = 0; i < 512; ++i) {
    auto id = intern_group("customer-vip-group-10-20-" + std::to_string(i) +
                           ".production.example.net");
    s.owned.push_back(id);
    s.preferred.push_back(id);
    s.quarantined.push_back(id);
    b.allocation.emplace_back(
        id, std::make_pair(0x0a000000u + (i % 64), 1u + (i % 64)));
  }
  auto v1_state = encode_state(to_v1(s)).size();
  auto v2_state = encode_state_v2(s).size();
  EXPECT_LT(v2_state, v1_state / 2)
      << "v2 STATE must at least halve the duplicated-name v1 body";
  auto v1_balance = encode_balance(to_v1(b)).size();
  auto v2_balance = encode_balance_v2(b).size();
  EXPECT_LT(v2_balance, v1_balance);
}

TEST(WamWireV2, EmptyListsRoundTrip) {
  StateMsgV2 s;
  s.view = ViewTag{2, 0x0a000004, 1};
  s.mature = false;
  s.weight = 1;
  auto d = decode_state_v2(encode_state_v2(s));
  EXPECT_TRUE(d.owned.empty());
  EXPECT_TRUE(d.preferred.empty());
  EXPECT_TRUE(d.quarantined.empty());

  BalanceMsgV2 b;
  b.view = s.view;
  EXPECT_TRUE(decode_balance_v2(encode_balance_v2(b)).allocation.empty());
}

}  // namespace
}  // namespace wam::wackamole
