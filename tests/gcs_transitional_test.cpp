// Extended-Virtual-Synchrony transitional signals: before the old view's
// message tail replays during a membership change, members learn which
// peers transition together.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

struct TransRec {
  std::vector<gcs::GroupView> views;
  std::unique_ptr<gcs::Client> client;
  explicit TransRec(const std::string& name) {
    gcs::ClientCallbacks cb;
    cb.on_membership = [this](const gcs::GroupView& v) {
      views.push_back(v);
    };
    client = std::make_unique<gcs::Client>(name, std::move(cb));
  }
};

struct TransitionalTest : ::testing::Test {
  GcsCluster c{3};
  std::vector<std::unique_ptr<TransRec>> recs;

  void SetUp() override {
    c.start_all();
    c.run(sim::seconds(5.0));
    for (std::size_t i = 0; i < 3; ++i) {
      auto r = std::make_unique<TransRec>("t" + std::to_string(i));
      ASSERT_TRUE(r->client->connect(*c.daemons[i]));
      r->client->join("g");
      recs.push_back(std::move(r));
    }
    c.run(sim::seconds(1.0));
  }
};

TEST_F(TransitionalTest, DeliveredBeforeTheRegularView) {
  auto before = recs[0]->views.size();
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  ASSERT_GE(recs[0]->views.size(), before + 2);
  // First new event: the transitional view (old daemon view id, continuing
  // members only); then the regular installed view.
  const auto& trans = recs[0]->views[before];
  const auto& regular = recs[0]->views[before + 1];
  EXPECT_TRUE(trans.transitional);
  EXPECT_FALSE(regular.transitional);
  EXPECT_LT(trans.daemon_view.epoch, regular.daemon_view.epoch);
  // Continuing members: the two survivors.
  EXPECT_EQ(trans.members.size(), 2u);
  EXPECT_EQ(regular.members.size(), 2u);
}

TEST_F(TransitionalTest, IsolatedMemberSeesSingletonTransitional) {
  auto before = recs[2]->views.size();
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  ASSERT_GE(recs[2]->views.size(), before + 2);
  const auto& trans = recs[2]->views[before];
  EXPECT_TRUE(trans.transitional);
  EXPECT_EQ(trans.members.size(), 1u);
}

TEST_F(TransitionalTest, GracefulLeaveHasNoTransitional) {
  auto count_transitional = [&](const TransRec& r) {
    int n = 0;
    for (const auto& v : r.views) {
      if (v.transitional) ++n;
    }
    return n;
  };
  auto before = count_transitional(*recs[0]);
  recs[2]->client->leave("g");
  c.run(sim::seconds(1.0));
  // A lightweight leave does not change the daemon membership, so no
  // transitional signal fires.
  EXPECT_EQ(count_transitional(*recs[0]), before);
}

TEST_F(TransitionalTest, WackamoleIgnoresTransitionalViews) {
  // The wackamole daemon must not GATHER on a transitional signal: its
  // view-change counter advances once per regular installation only.
  // (Covered behaviourally by every wam test passing; assert the filter
  // here directly via a scripted client that mimics the daemon's rule.)
  int regular = 0, transitional = 0;
  for (const auto& v : recs[1]->views) {
    (v.transitional ? transitional : regular)++;
  }
  c.hosts[0]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  int regular2 = 0, transitional2 = 0;
  for (const auto& v : recs[1]->views) {
    (v.transitional ? transitional2 : regular2)++;
  }
  EXPECT_EQ(transitional2, transitional + 1);
  EXPECT_EQ(regular2, regular + 1);
}

}  // namespace
}  // namespace wam::testing
