#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include "util/hexdump.hpp"

namespace wam::util {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(Bytes, StringsAndBlobs) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  Bytes blob{1, 2, 3};
  w.bytes(blob);

  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
  r.expect_end();
}

TEST(Bytes, RawFixedWidth) {
  ByteWriter w;
  Bytes mac{0x02, 0, 0, 0, 0, 7};
  w.raw(mac);
  ByteReader r(w.data());
  EXPECT_EQ(r.raw(6), mac);
}

TEST(Bytes, TruncatedThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  (void)r.u8();
  (void)r.u8();
  EXPECT_THROW((void)r.u8(), DecodeError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  ByteReader r(w.data());
  EXPECT_THROW((void)r.str(), DecodeError);
}

TEST(Bytes, ExpectEndThrowsOnTrailingGarbage) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.data());
  (void)r.u8();
  EXPECT_THROW(r.expect_end(), DecodeError);
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.u64(0);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Hexdump, HexRendersBytes) {
  Bytes b{0x00, 0xff, 0x10};
  EXPECT_EQ(hex(b), "00 ff 10");
}

TEST(Hexdump, DumpHasAsciiGutter) {
  Bytes b;
  for (char c : std::string("Wackamole!")) {
    b.push_back(static_cast<std::uint8_t>(c));
  }
  auto dump = hexdump(b);
  EXPECT_NE(dump.find("|Wackamole!|"), std::string::npos);
}

}  // namespace
}  // namespace wam::util
