// Randomized end-to-end property test: Properties 1 and 2 of Section 3.1
// under a random storm of partitions, merges, interface faults and
// recoveries.
//
//   Property 1 (Correctness): after quiescence, every VIP is covered
//   exactly once within every maximal connected component of servers in
//   the RUN state.
//   Property 2 (Liveness): after quiescence, every connected server
//   reaches RUN.
#include <gtest/gtest.h>

#include <set>

#include "sim/random.hpp"
#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

// Parameter: (seed, variant) where variant selects the ordering engine,
// transport and decision mode — the properties must hold on every stack.
class WamPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(WamPropertyTest, CorrectnessAndLivenessUnderRandomFaults) {
  auto [seed, variant] = GetParam();
  sim::Rng rng(seed * 7919 + 13);
  constexpr int kN = 5;
  constexpr int kVips = 7;
  auto config = test_config(kVips);
  config.balance_timeout = sim::seconds(15.0);  // let balance interleave too
  auto gcs_config = gcs::Config::spread_tuned();
  switch (variant) {
    case 0: break;  // sequencer + broadcast + distributed decisions
    case 1: gcs_config = gcs_config.with_token_ring(); break;
    case 2: gcs_config = gcs_config.with_multicast(); break;
    case 3: config.representative_driven = true; break;
  }
  WamCluster c(kN, config, gcs_config);
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.expect_correctness({0, 1, 2, 3, 4}, "initial");

  std::set<int> down;  // servers with their NIC administratively down
  std::vector<std::vector<int>> groups{{0, 1, 2, 3, 4}};

  for (int phase = 0; phase < 10; ++phase) {
    int action = static_cast<int>(rng.below(4));
    switch (action) {
      case 0: {  // random partition over all servers
        int k = static_cast<int>(rng.range(1, 3));
        std::vector<std::vector<int>> next(static_cast<std::size_t>(k));
        for (int i = 0; i < kN; ++i) {
          next[rng.below(static_cast<std::uint64_t>(k))].push_back(i);
        }
        groups.clear();
        for (auto& g : next) {
          if (!g.empty()) groups.push_back(g);
        }
        c.partition(groups);
        break;
      }
      case 1:  // merge
        groups = {{0, 1, 2, 3, 4}};
        c.merge();
        break;
      case 2: {  // NIC down
        int victim = static_cast<int>(rng.below(kN));
        down.insert(victim);
        c.hosts[static_cast<std::size_t>(victim)]->set_interface_up(0, false);
        break;
      }
      case 3: {  // NIC up
        if (!down.empty()) {
          int revive = *down.begin();
          down.erase(down.begin());
          c.hosts[static_cast<std::size_t>(revive)]->set_interface_up(0, true);
        }
        break;
      }
    }

    c.run(sim::seconds(10.0));  // quiesce (tuned gcs: ample)

    // Effective components: partition groups minus downed servers, plus a
    // singleton per downed server.
    std::vector<std::vector<int>> components;
    for (const auto& g : groups) {
      std::vector<int> alive;
      for (int idx : g) {
        if (down.count(idx) == 0) alive.push_back(idx);
      }
      if (!alive.empty()) components.push_back(alive);
    }
    for (int idx : down) components.push_back({idx});

    for (const auto& component : components) {
      c.expect_correctness(component,
                           ("phase " + std::to_string(phase) + " seed " +
                            std::to_string(seed) + " variant " +
                            std::to_string(variant))
                               .c_str());
    }
  }

  // Heal everything; the whole cluster must converge to exactly-once.
  for (int idx : down) {
    c.hosts[static_cast<std::size_t>(idx)]->set_interface_up(0, true);
  }
  c.merge();
  c.run(sim::seconds(10.0));
  c.expect_correctness({0, 1, 2, 3, 4}, "final heal");
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByVariant, WamPropertyTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8, 9, 10),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace wam::testing
