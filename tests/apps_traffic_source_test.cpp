// TrafficSource API pins: ProbeConfig defaults reproduce the paper's
// hard-coded methodology byte-for-byte, scenarios accept any TrafficSource
// polymorphically, and TrafficReport merging is well-defined.
#include "apps/traffic_source.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "apps/cluster_scenario.hpp"
#include "apps/probe_client.hpp"
#include "apps/scenario.hpp"
#include "apps/workload.hpp"
#include "load/generator.hpp"

namespace wam::apps {
namespace {

TEST(ProbeConfig, DefaultsPinThePaperMethodology) {
  // These WERE hard-coded in ProbeClient; the config must not drift, or
  // every scenario and chaos seed in the repo changes behavior.
  ProbeConfig config;
  EXPECT_EQ(config.target_port, 9000);
  EXPECT_EQ(config.interval, sim::milliseconds(10));
  EXPECT_EQ(config.local_port, 30000);
}

TEST(ProbeConfig, BuilderChainsAndAddressConverts) {
  auto vip = net::Ipv4Address(10, 0, 0, 100);
  // Implicit conversion: an address is a config (migration path for the
  // old two-arg constructor call sites).
  ProbeConfig from_addr = vip;
  EXPECT_EQ(from_addr.target, vip);
  EXPECT_EQ(from_addr.interval, sim::milliseconds(10));

  auto built = ProbeConfig(vip)
                   .every(sim::milliseconds(5))
                   .port(8080)
                   .from_port(31000);
  EXPECT_EQ(built.target, vip);
  EXPECT_EQ(built.interval, sim::milliseconds(5));
  EXPECT_EQ(built.target_port, 8080);
  EXPECT_EQ(built.local_port, 31000);
}

TEST(TrafficReport, MergeSumsCountsAndKeepsMaxGap)
{
  TrafficReport a;
  a.requests_sent = 100;
  a.responses = 90;
  a.lost = 10;
  a.retries = 3;
  a.longest_gap = sim::seconds(2.0);
  TrafficReport b;
  b.requests_sent = 50;
  b.responses = 50;
  b.longest_gap = sim::seconds(5.0);
  a.merge(b);
  EXPECT_EQ(a.requests_sent, 150u);
  EXPECT_EQ(a.responses, 140u);
  EXPECT_EQ(a.lost, 10u);
  EXPECT_EQ(a.retries, 3u);
  EXPECT_EQ(a.longest_gap, sim::seconds(5.0));
  EXPECT_NEAR(a.availability(), 140.0 / 150.0, 1e-12);
}

TEST(TrafficReport, SummaryIsStructured) {
  TrafficReport r;
  r.requests_sent = 10;
  r.responses = 9;
  r.lost = 1;
  auto s = r.summary();
  EXPECT_NE(s.find("sent=10"), std::string::npos);
  EXPECT_NE(s.find("answered=9"), std::string::npos);
  EXPECT_NE(s.find("lost=1"), std::string::npos);
  EXPECT_NE(s.find("avail=0.9000"), std::string::npos);
}

TEST(TrafficSource, ScenarioAcceptsAnySourcePolymorphically) {
  ClusterOptions opt;
  opt.num_servers = 2;
  opt.num_vips = 4;
  opt.with_router = false;
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(60.0)));

  // One probe (built from options), one workload, one open-loop load
  // generator — all through the same attach point.
  s.start_probe(0);
  WorkloadOptions wopt;
  wopt.targets = {s.vip(1)};
  wopt.request_interval = sim::milliseconds(20);
  s.attach_traffic(std::make_unique<Workload>(s.client_host(), wopt));
  load::LoadOptions lopt;
  lopt.vips = {s.vip(2), s.vip(3)};
  lopt.flows_per_second = 500.0;
  lopt.local_port = 32001;
  s.attach_traffic(
      std::make_unique<load::LoadGenerator>(s.client_host(), lopt));
  s.run(sim::seconds(2.0));

  ASSERT_EQ(s.traffic().size(), 3u);
  auto total = s.traffic_report();
  EXPECT_GT(total.requests_sent, 0u);
  EXPECT_GT(total.responses, 0u);
  // All three drivers individually reported traffic.
  for (const auto& source : s.traffic()) {
    EXPECT_GT(source->report().requests_sent, 0u);
  }
  // probe() still works as the typed accessor.
  EXPECT_GT(s.probe().requests_sent(), 0u);
}

// The DSL pinning test: a scenario that spells out the defaults must
// produce byte-identical output to one that relies on them.
TEST(TrafficSource, ScenarioDslProbeDefaultsAreByteIdentical) {
  const char* implicit_text =
      "servers 3\n"
      "vips 6\n"
      "at 1 probe 0\n"
      "at 3 disconnect server1\n"
      "at 20 coverage\n"
      "run 21\n";
  const char* explicit_text =
      "servers 3\n"
      "vips 6\n"
      "probe interval 0.01\n"
      "probe port 9000\n"
      "at 1 probe 0\n"
      "at 3 disconnect server1\n"
      "at 20 coverage\n"
      "run 21\n";
  std::ostringstream implicit_out;
  std::ostringstream explicit_out;
  EXPECT_TRUE(run_scenario(implicit_text, implicit_out));
  EXPECT_TRUE(run_scenario(explicit_text, explicit_out));
  EXPECT_EQ(implicit_out.str(), explicit_out.str());
  // The run actually exercised the probe and reported its traffic.
  EXPECT_NE(implicit_out.str().find("traffic: sent="), std::string::npos);
}

TEST(TrafficSource, ScenarioDslProbeKnobsApply) {
  auto parsed = parse_scenario(
      "servers 2\n"
      "probe interval 0.25\n"
      "probe port 1234\n"
      "run 5\n");
  EXPECT_EQ(parsed.options.probe.interval, sim::milliseconds(250));
  EXPECT_EQ(parsed.options.probe.target_port, 1234);
}

}  // namespace
}  // namespace wam::apps
