// Edge cases of the host IP stack: ARP retry/queueing behaviour, loopback,
// routing corner cases, forwarding pathologies.
#include <gtest/gtest.h>

#include <memory>

#include "net/host.hpp"

namespace wam::net {
namespace {

struct NetEdgeTest : ::testing::Test {
  sim::Scheduler sched;
  Fabric fabric{sched};
  SegmentId seg = fabric.add_segment();

  std::unique_ptr<Host> make_host(const std::string& name, int octet) {
    auto h = std::make_unique<Host>(sched, fabric, name);
    h->add_interface(
        seg, Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(octet)), 24);
    return h;
  }
};

TEST_F(NetEdgeTest, ArpRetriesThenGivesUp) {
  auto a = make_host("a", 1);
  a->send_udp(Ipv4Address(10, 0, 0, 77), 7, 7, {1});  // nobody home
  sched.run_all();
  // 1 initial + arp_max_retries requests, then the packet is dropped.
  EXPECT_EQ(a->counters().arp_requests_sent,
            static_cast<std::uint64_t>(1 + a->arp_max_retries));
  EXPECT_EQ(a->counters().arp_resolution_failures, 1u);
}

TEST_F(NetEdgeTest, LateResponderStillGetsQueuedPackets) {
  auto a = make_host("a", 1);
  auto b = std::make_unique<Host>(sched, fabric, "b");
  b->add_interface(seg, Ipv4Address(10, 0, 0, 2), 24);
  b->set_interface_up(0, false);
  int got = 0;
  b->open_udp(7, [&](const Host::UdpContext&, const util::Bytes&) { ++got; });

  a->send_udp(Ipv4Address(10, 0, 0, 2), 7, 7, {1});
  a->send_udp(Ipv4Address(10, 0, 0, 2), 7, 7, {2});
  // Come up between retries (retry interval 1 s, 3 retries).
  sched.schedule(sim::milliseconds(1500), [&] { b->set_interface_up(0, true); });
  sched.run_all();
  EXPECT_EQ(got, 2);  // both queued packets flushed on resolution
}

TEST_F(NetEdgeTest, QueuedPacketsPreserveOrder) {
  // Zero jitter: with equal latency the fabric delivers in send order, so
  // the ARP-queue flush order is observable. (With jitter, UDP reorders —
  // by design.)
  fabric.segment_config(seg).jitter = sim::kZero;
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  std::vector<std::uint8_t> order;
  b->open_udp(7, [&](const Host::UdpContext&, const util::Bytes& p) {
    order.push_back(p[0]);
  });
  for (std::uint8_t i = 0; i < 5; ++i) {
    a->send_udp(Ipv4Address(10, 0, 0, 2), 7, 7, {i});
  }
  sched.run_all();
  EXPECT_EQ(order, (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
}

TEST_F(NetEdgeTest, LoopbackToOwnAliasWorks) {
  auto a = make_host("a", 1);
  a->add_alias(0, Ipv4Address(10, 0, 0, 100));
  int got = 0;
  a->open_udp(7, [&](const Host::UdpContext& ctx, const util::Bytes&) {
    ++got;
    EXPECT_EQ(ctx.dst_ip, Ipv4Address(10, 0, 0, 100));
  });
  a->send_udp(Ipv4Address(10, 0, 0, 100), 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
  // No frames hit the wire for loopback.
  EXPECT_EQ(fabric.counters().frames_sent, 0u);
}

TEST_F(NetEdgeTest, SelfAddressedLoopback) {
  auto a = make_host("a", 1);
  int got = 0;
  a->open_udp(7, [&](const Host::UdpContext&, const util::Bytes&) { ++got; });
  a->send_udp(a->primary_ip(0), 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(NetEdgeTest, LongestPrefixWinsAmongInterfaces) {
  auto seg2 = fabric.add_segment();
  auto h = std::make_unique<Host>(sched, fabric, "multi");
  h->add_interface(seg, Ipv4Address(10, 0, 0, 1), 16);   // 10.0/16
  h->add_interface(seg2, Ipv4Address(10, 0, 1, 1), 24);  // 10.0.1/24
  auto target = std::make_unique<Host>(sched, fabric, "t");
  target->add_interface(seg2, Ipv4Address(10, 0, 1, 9), 24);
  int got = 0;
  target->open_udp(7, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got;
  });
  // 10.0.1.9 matches both attached networks; must egress the /24.
  h->send_udp(Ipv4Address(10, 0, 1, 9), 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(NetEdgeTest, ForwardingDisabledDropsTransit) {
  auto a = make_host("a", 1);
  auto not_router = make_host("nr", 2);
  // Force a frame at the non-router addressed elsewhere: use a poisoned
  // ARP entry so 'a' unicasts a transit packet at 'nr'.
  a->arp_cache().put(Ipv4Address(10, 0, 0, 99), not_router->mac(0),
                     sched.now());
  a->send_udp(Ipv4Address(10, 0, 0, 99), 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(not_router->counters().ip_not_ours, 1u);
}

TEST_F(NetEdgeTest, AliasOnSecondInterfaceAnswersThere) {
  auto seg2 = fabric.add_segment();
  auto h = std::make_unique<Host>(sched, fabric, "multi");
  h->add_interface(seg, Ipv4Address(10, 0, 0, 1), 24);
  h->add_interface(seg2, Ipv4Address(192, 168, 1, 1), 24);
  h->add_alias(1, Ipv4Address(192, 168, 1, 100));

  auto peer = std::make_unique<Host>(sched, fabric, "peer");
  peer->add_interface(seg2, Ipv4Address(192, 168, 1, 2), 24);
  int got = 0;
  h->open_udp(7, [&](const Host::UdpContext& ctx, const util::Bytes&) {
    ++got;
    EXPECT_EQ(ctx.ifindex, 1);
  });
  peer->send_udp(Ipv4Address(192, 168, 1, 100), 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(NetEdgeTest, BroadcastIsNotForwarded) {
  auto seg2 = fabric.add_segment();
  auto router = std::make_unique<Host>(sched, fabric, "r");
  router->add_interface(seg, Ipv4Address(10, 0, 0, 254), 24);
  router->add_interface(seg2, Ipv4Address(192, 168, 1, 254), 24);
  router->enable_forwarding(true);
  auto a = make_host("a", 1);
  auto far = std::make_unique<Host>(sched, fabric, "far");
  far->add_interface(seg2, Ipv4Address(192, 168, 1, 2), 24);
  int got = 0;
  far->open_udp(7, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got;
  });
  a->send_udp_broadcast(0, 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(got, 0);  // limited broadcast stays on its segment
}

TEST_F(NetEdgeTest, GratuitousArpForUnknownIpIgnored) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  // b announces an IP that a has never resolved: no cache entry appears.
  b->add_alias(0, Ipv4Address(10, 0, 0, 200));
  b->send_gratuitous_arp(0, Ipv4Address(10, 0, 0, 200));
  sched.run_all();
  EXPECT_FALSE(a->arp_cache().contains(Ipv4Address(10, 0, 0, 200)));
}

TEST_F(NetEdgeTest, InterfaceBounceKeepsAliases) {
  auto a = make_host("a", 1);
  a->add_alias(0, Ipv4Address(10, 0, 0, 100));
  a->set_interface_up(0, false);
  a->set_interface_up(0, true);
  EXPECT_TRUE(a->owns_ip(Ipv4Address(10, 0, 0, 100)));
}

}  // namespace
}  // namespace wam::net
