// The chaos campaign itself under test: deterministic replay, schedule
// generation, the fault models, the shrinker, the oracle, and a set of
// pinned regression seeds (seeds that once exposed real bugs stay in the
// suite forever — see docs/CHAOS.md).
#include <gtest/gtest.h>

#include <set>

#include "apps/cluster_scenario.hpp"
#include "apps/scenario.hpp"
#include "chaos/campaign.hpp"
#include "chaos/oracle.hpp"
#include "chaos/schedule.hpp"
#include "chaos/shrink.hpp"

namespace wam::chaos {
namespace {

// ---------------------------------------------------------- determinism ----

TEST(ChaosCampaign, ClusterReplayIsByteIdentical) {
  auto a = run_seed(7, Profile::kCluster);
  auto b = run_seed(7, Profile::kCluster);
  ASSERT_FALSE(a.timeline_json.empty());
  EXPECT_EQ(a.timeline_json, b.timeline_json);
  EXPECT_EQ(a.dsl, b.dsl);
  EXPECT_TRUE(a.passed()) << to_string(a.violations.front());
}

TEST(ChaosCampaign, RouterReplayIsByteIdentical) {
  CampaignOptions opt;
  opt.generator.num_servers = 3;
  auto a = run_seed(7, Profile::kRouter, opt);
  auto b = run_seed(7, Profile::kRouter, opt);
  ASSERT_FALSE(a.timeline_json.empty());
  EXPECT_EQ(a.timeline_json, b.timeline_json);
  EXPECT_TRUE(a.passed()) << to_string(a.violations.front());
}

TEST(ChaosCampaign, DifferentSeedsDiffer) {
  auto a = run_seed(1, Profile::kCluster);
  auto b = run_seed(2, Profile::kCluster);
  EXPECT_NE(a.dsl, b.dsl);
}

// Seeds that exposed real bugs; they must stay green forever.
//
//   * 63 — heap-use-after-free in gcs::Daemon::reforward_pending(): the
//     view-change re-forward iterated pending_out_ while reentrant client
//     callbacks grew or shrank it.
//   * 4, 28, 55, 66 — sequenced-stream tail loss: a connectivity glitch
//     shorter than the fault-detection timeout dropped the LAST agreed
//     messages; with no later message there was no gap to NACK, and the
//     affected daemons stayed in GATHER forever (Property 2 violation).
TEST(ChaosCampaign, PinnedRegressionSeedsStayClean) {
  CampaignOptions opt;
  opt.shrink = false;
  for (std::uint64_t seed : {4u, 28u, 55u, 63u, 66u}) {
    auto r = run_seed(seed, Profile::kCluster, opt);
    EXPECT_TRUE(r.passed())
        << "seed " << seed << ": " << to_string(r.violations.front());
  }
}

TEST(ChaosCampaign, OsFaultReplayIsByteIdentical) {
  CampaignOptions opt;
  opt.generator.os_faults = true;
  opt.shrink = false;
  auto a = run_seed(11, Profile::kCluster, opt);
  auto b = run_seed(11, Profile::kCluster, opt);
  ASSERT_FALSE(a.timeline_json.empty());
  EXPECT_EQ(a.timeline_json, b.timeline_json);
  EXPECT_EQ(a.dsl, b.dsl);
  EXPECT_TRUE(a.passed()) << to_string(a.violations.front());
}

// --------------------------------------------------- schedule generation ----

TEST(ChaosSchedule, GenerationIsDeterministic) {
  GeneratorOptions opt;
  sim::Rng r1(42), r2(42);
  auto a = generate_cluster_schedule(r1, opt);
  auto b = generate_cluster_schedule(r2, opt);
  EXPECT_EQ(to_dsl(a), to_dsl(b));
  ASSERT_FALSE(a.actions.empty());
  ASSERT_FALSE(a.checkpoints.empty());
}

TEST(ChaosSchedule, ActionsStrictlyIncreaseAndEndBeforeHorizon) {
  GeneratorOptions opt;
  sim::Rng rng(9);
  auto s = generate_cluster_schedule(rng, opt);
  for (std::size_t i = 1; i < s.actions.size(); ++i) {
    EXPECT_LT(s.actions[i - 1].at, s.actions[i].at);
  }
  EXPECT_LT(s.actions.back().at, s.horizon);
  EXPECT_LT(s.checkpoints.back().at, s.horizon);
}

TEST(ChaosSchedule, DslRoundTripsThroughScenarioParser) {
  GeneratorOptions opt;
  sim::Rng rng(5);
  auto s = generate_cluster_schedule(rng, opt);
  auto parsed = apps::parse_scenario(to_dsl(s));
  EXPECT_EQ(parsed.options.num_servers, s.num_servers);
  EXPECT_EQ(parsed.options.num_vips, s.num_vips);
  ASSERT_EQ(parsed.actions.size(), s.actions.size());
  for (std::size_t i = 0; i < s.actions.size(); ++i) {
    const auto& want = s.actions[i];
    const auto& got = parsed.actions[i];
    EXPECT_EQ(got.verb, fault_kind_verb(want.kind)) << "action " << i;
    EXPECT_EQ(got.servers, want.servers) << "action " << i;
    EXPECT_EQ(got.groups, want.groups) << "action " << i;
    EXPECT_DOUBLE_EQ(got.value, want.value) << "action " << i;
    // The DSL prints times with millisecond precision.
    auto skew = got.at > want.at ? got.at - want.at : want.at - got.at;
    EXPECT_LE(skew, sim::milliseconds(1)) << "action " << i;
  }
  auto run_skew = parsed.run_until > s.horizon ? parsed.run_until - s.horizon
                                               : s.horizon - parsed.run_until;
  EXPECT_LE(run_skew, sim::milliseconds(1));
}

// Enforcement-layer faults are opt-in: with the default generator options
// no os-fault verb may appear, so every pinned seed above keeps replaying
// byte-identically.
TEST(ChaosSchedule, OsFaultsAreOptIn) {
  GeneratorOptions opt;
  sim::Rng rng(42);
  auto s = generate_cluster_schedule(rng, opt);
  EXPECT_FALSE(s.os_faults);
  for (const auto& a : s.actions) {
    EXPECT_NE(a.kind, FaultKind::kOsFail);
    EXPECT_NE(a.kind, FaultKind::kOsFailSticky);
    EXPECT_NE(a.kind, FaultKind::kArpLose);
    EXPECT_NE(a.kind, FaultKind::kOsHeal);
  }
}

TEST(ChaosSchedule, OsFaultGenerationIsDeterministicAndRoundTrips) {
  GeneratorOptions opt;
  opt.os_faults = true;
  sim::Rng r1(42), r2(42);
  auto a = generate_cluster_schedule(r1, opt);
  auto b = generate_cluster_schedule(r2, opt);
  EXPECT_EQ(to_dsl(a), to_dsl(b));
  EXPECT_TRUE(a.os_faults);
  bool any_os = false;
  for (const auto& x : a.actions) {
    any_os |= x.kind == FaultKind::kOsFail ||
              x.kind == FaultKind::kOsFailSticky ||
              x.kind == FaultKind::kArpLose || x.kind == FaultKind::kOsHeal;
  }
  EXPECT_TRUE(any_os) << to_dsl(a);

  auto parsed = apps::parse_scenario(to_dsl(a));
  ASSERT_EQ(parsed.actions.size(), a.actions.size());
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(parsed.actions[i].verb, fault_kind_verb(a.actions[i].kind))
        << "action " << i;
    EXPECT_EQ(parsed.actions[i].servers, a.actions[i].servers)
        << "action " << i;
    EXPECT_DOUBLE_EQ(parsed.actions[i].value, a.actions[i].value)
        << "action " << i;
  }
}

// ---------------------------------------------------------- fault model ----

FaultAction act(FaultKind kind, std::vector<int> servers = {},
                std::vector<std::vector<int>> groups = {}, double value = 0) {
  FaultAction a;
  a.kind = kind;
  a.servers = std::move(servers);
  a.groups = std::move(groups);
  a.value = value;
  return a;
}

TEST(ChaosModel, ComponentsTrackPartitionAndNicFaults) {
  ClusterFaultModel m(5);
  EXPECT_EQ(m.components().size(), 1u);
  m.apply(act(FaultKind::kPartition, {}, {{0, 1}, {2, 3, 4}}));
  EXPECT_EQ(m.components().size(), 2u);
  // A NIC-down server becomes its own singleton component.
  m.apply(act(FaultKind::kNicDown, {3}));
  auto comps = m.components();
  EXPECT_EQ(comps.size(), 3u);
  bool singleton = false;
  for (const auto& c : comps) singleton |= (c == std::vector<int>{3});
  EXPECT_TRUE(singleton);
  m.apply(act(FaultKind::kNicUp, {3}));
  m.apply(act(FaultKind::kMerge));
  EXPECT_EQ(m.components().size(), 1u);
}

TEST(ChaosModel, ParticipationTracksCrashAndLeave) {
  ClusterFaultModel m(3);
  EXPECT_TRUE(m.participant(1));
  m.apply(act(FaultKind::kCrash, {1}));
  EXPECT_FALSE(m.participant(1));
  m.apply(act(FaultKind::kRestart, {1}));
  EXPECT_TRUE(m.participant(1));
  m.apply(act(FaultKind::kLeave, {2}));
  EXPECT_FALSE(m.participant(2));
  m.apply(act(FaultKind::kJoin, {2}));
  EXPECT_TRUE(m.participant(2));
}

TEST(ChaosModel, TransientsMarkCheckpointsUnsound) {
  ClusterFaultModel m(3);
  EXPECT_FALSE(m.transient_active());
  m.apply(act(FaultKind::kDrop, {0, 1}));
  EXPECT_TRUE(m.transient_active());
  m.apply(act(FaultKind::kUndrop));
  EXPECT_FALSE(m.transient_active());
  m.apply(act(FaultKind::kLoss, {}, {}, 0.2));
  EXPECT_TRUE(m.transient_active());
  m.apply(act(FaultKind::kLoss, {}, {}, 0.0));
  EXPECT_FALSE(m.transient_active());
}

TEST(ChaosModel, OsFaultKnobsTrackArmAndHeal) {
  ClusterFaultModel m(3);
  EXPECT_FALSE(m.os_prob(0));
  m.apply(act(FaultKind::kOsFail, {0}, {}, 0.3));
  EXPECT_TRUE(m.os_prob(0));
  // Probabilistic OS faults are transient: the generator heals them before
  // quiescence, so checkpoints with one active are unsound.
  EXPECT_TRUE(m.transient_active());
  m.apply(act(FaultKind::kOsFail, {0}, {}, 0.0));  // value 0 heals
  EXPECT_FALSE(m.os_prob(0));
  EXPECT_FALSE(m.transient_active());

  // Sticky and arp-lose faults persist through quiescence — the oracle
  // reasons about them instead of skipping the checkpoint.
  m.apply(act(FaultKind::kOsFailSticky, {1}));
  EXPECT_TRUE(m.os_sticky(1));
  EXPECT_FALSE(m.transient_active());
  m.apply(act(FaultKind::kArpLose, {2}));
  EXPECT_TRUE(m.arp_lose(2));
  EXPECT_FALSE(m.transient_active());

  m.apply(act(FaultKind::kOsHeal, {1}));
  EXPECT_FALSE(m.os_sticky(1));
  m.apply(act(FaultKind::kOsHeal, {2}));
  EXPECT_FALSE(m.arp_lose(2));
}

// Mirrors the executor's defensive no-ops: the shrinker may hand the model
// any subsequence, so e.g. a leave on a crashed server must not count.
TEST(ChaosModel, MirrorsExecutorNoOps) {
  ClusterFaultModel m(3);
  m.apply(act(FaultKind::kCrash, {1}));
  m.apply(act(FaultKind::kLeave, {1}));  // wam already down: no-op
  m.apply(act(FaultKind::kRestart, {1}));
  EXPECT_TRUE(m.participant(1)) << "leave on a crashed server must not stick";
}

// ------------------------------------------------------------- shrinker ----

TEST(ChaosShrink, IsolatesTheInteractingPair) {
  // Ten actions; the "bug" needs exactly the crash of 1 AND the leave of 2.
  std::vector<FaultAction> actions;
  for (int i = 0; i < 4; ++i) actions.push_back(act(FaultKind::kMerge));
  actions.push_back(act(FaultKind::kCrash, {1}));
  for (int i = 0; i < 3; ++i) actions.push_back(act(FaultKind::kMerge));
  actions.push_back(act(FaultKind::kLeave, {2}));
  actions.push_back(act(FaultKind::kMerge));
  auto fails = [](const std::vector<FaultAction>& c) {
    bool crash1 = false, leave2 = false;
    for (const auto& a : c) {
      crash1 |= a.kind == FaultKind::kCrash && a.servers == std::vector{1};
      leave2 |= a.kind == FaultKind::kLeave && a.servers == std::vector{2};
    }
    return crash1 && leave2;
  };
  auto r = shrink_schedule(actions, fails);
  ASSERT_EQ(r.actions.size(), 2u);
  EXPECT_EQ(r.actions[0].kind, FaultKind::kCrash);
  EXPECT_EQ(r.actions[1].kind, FaultKind::kLeave);
  EXPECT_GT(r.evaluations, 0);
  EXPECT_FALSE(r.exhausted);
}

TEST(ChaosShrink, ReturnsInputWhenEverythingIsNeeded) {
  std::vector<FaultAction> actions(4, act(FaultKind::kMerge));
  auto all_needed = [&](const std::vector<FaultAction>& c) {
    return c.size() == actions.size();
  };
  auto r = shrink_schedule(actions, all_needed);
  EXPECT_EQ(r.actions.size(), 4u);
}

TEST(ChaosShrink, RespectsEvaluationBudget) {
  std::vector<FaultAction> actions(64, act(FaultKind::kMerge));
  int calls = 0;
  auto fails = [&](const std::vector<FaultAction>& c) {
    ++calls;
    return !c.empty();
  };
  auto r = shrink_schedule(actions, fails, 5);
  EXPECT_LE(r.evaluations, 5);
  EXPECT_EQ(calls, r.evaluations);
  EXPECT_TRUE(r.exhausted);
}

// --------------------------------------------------------------- oracle ----

// The oracle must actually detect: silently withdraw a daemon WITHOUT
// telling the fault model, and the model-predicted participant shows up as
// a Property 2 violation.
TEST(ChaosOracle, DetectsAWithdrawnParticipant) {
  apps::ClusterOptions opt;
  opt.num_servers = 3;
  opt.num_vips = 5;
  opt.with_router = false;
  apps::ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));

  ClusterFaultModel model(3);
  std::vector<Violation> clean;
  check_cluster_invariants(s, model, false, clean);
  EXPECT_TRUE(clean.empty());

  s.wam(1).graceful_shutdown();
  s.run(sim::seconds(2.0));
  std::vector<Violation> out;
  check_cluster_invariants(s, model, true, out);
  ASSERT_FALSE(out.empty());
  bool not_run = false;
  for (const auto& v : out) {
    not_run |= v.kind == Violation::Kind::kNotRun;
    EXPECT_TRUE(v.persisted);
  }
  EXPECT_TRUE(not_run);
}

TEST(ChaosOracle, PairFilterReportsOnlyViolationsSpanningBothCheckpoints) {
  auto uncovered = [](const char* detail) {
    Violation v;
    v.kind = Violation::Kind::kUncovered;
    v.detail = detail;
    return v;
  };
  PairPersistenceFilter f;
  std::vector<Violation> out;

  // Pair 1: a hole at post-quiesce that healed by the guard — dropped.
  f.apply(false, {uncovered("10.0.0.104 covered 0x in {s1,s2}")}, out);
  f.apply(true, {}, out);
  EXPECT_TRUE(out.empty());

  // Pair 2: a hole that opens between the checkpoints — dropped too (the
  // next pair catches it if it is real).
  f.apply(false, {}, out);
  f.apply(true, {uncovered("10.0.0.104 covered 0x in {s1,s2}")}, out);
  EXPECT_TRUE(out.empty());

  // Pair 3: present at both checkpoints — reported once, at the guard.
  f.apply(false, {uncovered("10.0.0.104 covered 0x in {s1,s2}")}, out);
  f.apply(true, {uncovered("10.0.0.104 covered 0x in {s1,s2}")}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, Violation::Kind::kUncovered);
  out.clear();

  // Pair state resets between pairs: the same condition a whole phase
  // later must persist across ITS OWN pair to count.
  f.apply(false, {}, out);
  f.apply(true, {uncovered("10.0.0.104 covered 0x in {s1,s2}")}, out);
  EXPECT_TRUE(out.empty());

  // Property 2 is never deferred: a stuck daemon reports immediately.
  Violation stuck;
  stuck.kind = Violation::Kind::kNotRun;
  stuck.detail = "server2 state=GATHER for 12s";
  f.apply(false, {stuck}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, Violation::Kind::kNotRun);
}

TEST(ChaosOracle, SkipsCheckpointsWithActiveTransients) {
  apps::ClusterOptions opt;
  opt.num_servers = 3;
  opt.num_vips = 5;
  opt.with_router = false;
  apps::ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.wam(1).graceful_shutdown();
  s.run(sim::seconds(2.0));

  ClusterFaultModel model(3);
  model.apply(act(FaultKind::kDrop, {0, 2}));  // transient still active
  std::vector<Violation> out;
  check_cluster_invariants(s, model, false, out);
  EXPECT_TRUE(out.empty()) << "transient-active checkpoints must be skipped";
}

}  // namespace
}  // namespace wam::chaos
