#include "net/host.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace wam::net {
namespace {

struct HostTest : ::testing::Test {
  sim::Scheduler sched;
  Fabric fabric{sched};
  SegmentId seg = fabric.add_segment();

  std::unique_ptr<Host> make_host(const std::string& name, int last_octet) {
    auto h = std::make_unique<Host>(sched, fabric, name);
    h->add_interface(seg, Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(
                                                    last_octet)),
                     24);
    return h;
  }
};

TEST_F(HostTest, UdpBetweenTwoHostsWithArpResolution) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  std::vector<std::string> got;
  b->open_udp(9000, [&](const Host::UdpContext& ctx, const util::Bytes& p) {
    got.emplace_back(p.begin(), p.end());
    EXPECT_EQ(ctx.src_ip, Ipv4Address(10, 0, 0, 1));
    EXPECT_EQ(ctx.dst_ip, Ipv4Address(10, 0, 0, 2));
  });
  util::Bytes payload{'h', 'i'};
  a->send_udp(Ipv4Address(10, 0, 0, 2), 9000, 1234, payload);
  sched.run_all();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hi");
  // ARP resolved: one request, and both sides learned mappings.
  EXPECT_EQ(a->counters().arp_requests_sent, 1u);
  EXPECT_TRUE(a->arp_cache().contains(Ipv4Address(10, 0, 0, 2)));
  EXPECT_TRUE(b->arp_cache().contains(Ipv4Address(10, 0, 0, 1)));
}

TEST_F(HostTest, SecondSendUsesCachedArp) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  b->open_udp(9000, [](const Host::UdpContext&, const util::Bytes&) {});
  a->send_udp(Ipv4Address(10, 0, 0, 2), 9000, 1, {1});
  sched.run_all();
  a->send_udp(Ipv4Address(10, 0, 0, 2), 9000, 1, {2});
  sched.run_all();
  EXPECT_EQ(a->counters().arp_requests_sent, 1u);
  EXPECT_EQ(b->counters().udp_received, 2u);
}

TEST_F(HostTest, ReplyUsesRequestDestinationAsSource) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  b->add_alias(0, Ipv4Address(10, 0, 0, 100));
  Ipv4Address reply_src;
  a->open_udp(5555, [&](const Host::UdpContext& ctx, const util::Bytes&) {
    reply_src = ctx.src_ip;
  });
  b->open_udp(9000, [&](const Host::UdpContext& ctx, const util::Bytes&) {
    // Answer from the VIP the request was addressed to.
    b->send_udp_from(ctx.dst_ip, ctx.src_ip, ctx.src_port, ctx.dst_port, {1});
  });
  a->send_udp(Ipv4Address(10, 0, 0, 100), 9000, 5555, {0});
  sched.run_all();
  EXPECT_EQ(reply_src, Ipv4Address(10, 0, 0, 100));
}

TEST_F(HostTest, AliasReceivesTraffic) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  b->add_alias(0, Ipv4Address(10, 0, 0, 50));
  int got = 0;
  b->open_udp(7, [&](const Host::UdpContext&, const util::Bytes&) { ++got; });
  a->send_udp(Ipv4Address(10, 0, 0, 50), 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
  EXPECT_TRUE(b->owns_ip(Ipv4Address(10, 0, 0, 50)));
  b->remove_alias(0, Ipv4Address(10, 0, 0, 50));
  EXPECT_FALSE(b->owns_ip(Ipv4Address(10, 0, 0, 50)));
}

TEST_F(HostTest, RemovedAliasStopsAnsweringArp) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  auto vip = Ipv4Address(10, 0, 0, 50);
  b->add_alias(0, vip);
  b->remove_alias(0, vip);
  b->open_udp(7, [](const Host::UdpContext&, const util::Bytes&) {});
  a->send_udp(vip, 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(b->counters().udp_received, 0u);
  // ARP retries exhausted, packet dropped.
  EXPECT_GE(a->counters().arp_resolution_failures, 1u);
}

TEST_F(HostTest, BroadcastUdpReachesAllListeners) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  auto c = make_host("c", 3);
  int got_b = 0, got_c = 0;
  b->open_udp(4803, [&](const Host::UdpContext&, const util::Bytes&) { ++got_b; });
  c->open_udp(4803, [&](const Host::UdpContext&, const util::Bytes&) { ++got_c; });
  a->send_udp_broadcast(0, 4803, 4803, {1});
  sched.run_all();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 1);
}

TEST_F(HostTest, GratuitousArpUpdatesOnlyExistingEntries) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  auto c = make_host("c", 3);
  auto vip = Ipv4Address(10, 0, 0, 50);
  // a has an entry for the VIP pointing at b; c has never heard of it.
  a->arp_cache().put(vip, b->mac(), sched.now());

  c->add_alias(0, vip);
  c->send_gratuitous_arp(0, vip);
  sched.run_all();

  EXPECT_EQ(*a->arp_cache().lookup(vip, sched.now()), c->mac());
  EXPECT_FALSE(b->arp_cache().contains(vip));
}

TEST_F(HostTest, SpoofedReplyInsertsIntoTargetCache) {
  auto a = make_host("a", 1);
  auto c = make_host("c", 3);
  auto vip = Ipv4Address(10, 0, 0, 50);
  ASSERT_FALSE(a->arp_cache().contains(vip));

  c->add_alias(0, vip);
  // c does not know a's MAC yet; the spoof path resolves it first.
  c->send_spoofed_reply(0, vip, Ipv4Address(10, 0, 0, 1));
  sched.run_all();

  ASSERT_TRUE(a->arp_cache().contains(vip));
  EXPECT_EQ(*a->arp_cache().lookup(vip, sched.now()), c->mac());
}

TEST_F(HostTest, StaleArpEntryBlackholesUntilSpoofed) {
  auto client = make_host("client", 1);
  auto old_owner = make_host("old", 2);
  auto new_owner = make_host("new", 3);
  auto vip = Ipv4Address(10, 0, 0, 50);

  old_owner->add_alias(0, vip);
  int got = 0;
  auto handler = [&](const Host::UdpContext&, const util::Bytes&) { ++got; };
  old_owner->open_udp(7, handler);
  new_owner->open_udp(7, handler);

  client->send_udp(vip, 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);

  // Owner dies; client's cached entry still points at the dead MAC.
  old_owner->fail();
  client->send_udp(vip, 7, 7, {2});
  sched.run_all();
  EXPECT_EQ(got, 1);  // black hole

  // Fail-over: new owner acquires the VIP and spoofs the client's cache.
  new_owner->add_alias(0, vip);
  new_owner->send_spoofed_reply(0, vip, Ipv4Address(10, 0, 0, 1));
  sched.run_all();
  client->send_udp(vip, 7, 7, {3});
  sched.run_all();
  EXPECT_EQ(got, 2);
}

TEST_F(HostTest, InterfaceDownStopsTraffic) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  int got = 0;
  b->open_udp(7, [&](const Host::UdpContext&, const util::Bytes&) { ++got; });
  a->send_udp(Ipv4Address(10, 0, 0, 2), 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
  EXPECT_TRUE(b->is_up());
  b->set_interface_up(0, false);
  EXPECT_FALSE(b->is_up());
  a->send_udp(Ipv4Address(10, 0, 0, 2), 7, 7, {2});
  sched.run_all();
  EXPECT_EQ(got, 1);
  b->recover();
  EXPECT_TRUE(b->is_up());
}

TEST_F(HostTest, NoRouteCounted) {
  auto a = make_host("a", 1);
  a->send_udp(Ipv4Address(99, 99, 99, 99), 7, 7, {1});
  EXPECT_EQ(a->counters().ip_no_route, 1u);
}

TEST_F(HostTest, DefaultGatewayRoutesOffSubnet) {
  auto a = make_host("a", 1);
  auto gw = make_host("gw", 254);
  a->set_default_gateway(Ipv4Address(10, 0, 0, 254));
  gw->enable_forwarding(true);
  a->send_udp(Ipv4Address(99, 99, 99, 99), 7, 7, {1});
  sched.run_all();
  // Reached the gateway, which had no onward route.
  EXPECT_EQ(gw->counters().ip_no_route, 1u);
}

TEST_F(HostTest, ClosedSocketCountsNoSocket) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  b->open_udp(7, [](const Host::UdpContext&, const util::Bytes&) {});
  b->close_udp(7);
  a->send_udp(Ipv4Address(10, 0, 0, 2), 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(b->counters().udp_no_socket, 1u);
}

TEST_F(HostTest, OpenUdpRejectsDuplicatePort) {
  auto a = make_host("a", 1);
  EXPECT_TRUE(a->open_udp(7, [](const Host::UdpContext&, const util::Bytes&) {}));
  EXPECT_FALSE(a->open_udp(7, [](const Host::UdpContext&, const util::Bytes&) {}));
}

TEST_F(HostTest, ArpQueueCapBoundsPendingPackets) {
  auto a = make_host("a", 1);
  a->arp_queue_cap = 4;
  for (int i = 0; i < 10; ++i) {
    a->send_udp(Ipv4Address(10, 0, 0, 77), 7, 7, {1});
  }
  sched.run_all();
  // Only the capped packets were ever queued (then dropped on failure).
  EXPECT_EQ(a->counters().arp_resolution_failures, 4u);
}

}  // namespace
}  // namespace wam::net
