#include "wackamole/config.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace wam::wackamole {
namespace {

net::Ipv4Address ip(int n) {
  return net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(n));
}

TEST(WamConfig, WebClusterBuildsOneGroupPerVip) {
  auto c = Config::web_cluster({ip(100), ip(101)});
  ASSERT_EQ(c.vip_groups.size(), 2u);
  EXPECT_EQ(c.vip_groups[0].name, "10.0.0.100");
  EXPECT_EQ(c.vip_groups[0].addresses.size(), 1u);
  EXPECT_EQ(c.vip_groups[0].addresses[0].first, ip(100));
  c.validate();
}

TEST(WamConfig, GroupNamesSorted) {
  Config c;
  c.vip_groups = {{"zeta", {{ip(1), 0}}}, {"alpha", {{ip(2), 0}}}};
  auto names = c.group_names();
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(WamConfig, FindGroup) {
  auto c = Config::web_cluster({ip(100)});
  EXPECT_NE(c.find_group("10.0.0.100"), nullptr);
  EXPECT_EQ(c.find_group("nope"), nullptr);
}

TEST(WamConfig, ValidateRejectsDuplicateNames) {
  Config c;
  c.vip_groups = {{"g", {{ip(1), 0}}}, {"g", {{ip(2), 0}}}};
  EXPECT_THROW(c.validate(), util::ContractViolation);
}

TEST(WamConfig, ValidateRejectsDuplicateAddresses) {
  Config c;
  c.vip_groups = {{"a", {{ip(1), 0}}}, {"b", {{ip(1), 0}}}};
  EXPECT_THROW(c.validate(), util::ContractViolation);
}

TEST(WamConfig, ValidateRejectsEmptyGroup) {
  Config c;
  c.vip_groups = {{"a", {}}};
  EXPECT_THROW(c.validate(), util::ContractViolation);
}

TEST(WamConfig, ValidateRejectsUnknownPreference) {
  auto c = Config::web_cluster({ip(100)});
  c.preferred = {"not-a-group"};
  EXPECT_THROW(c.validate(), util::ContractViolation);
}

TEST(WamConfig, MultiAddressGroupValidates) {
  Config c;
  c.vip_groups = {{"virtual-router", {{ip(1), 0}, {ip(2), 1}, {ip(3), 2}}}};
  c.validate();
  EXPECT_EQ(c.vip_groups[0].addresses.size(), 3u);
}

}  // namespace
}  // namespace wam::wackamole
