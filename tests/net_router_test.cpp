#include "net/router.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace wam::net {
namespace {

// Topology: client -- external segment -- router -- cluster segment -- server
struct RouterTest : ::testing::Test {
  sim::Scheduler sched;
  Fabric fabric{sched};
  SegmentId external = fabric.add_segment();
  SegmentId cluster = fabric.add_segment();
  Router router{sched, fabric, "router"};
  std::unique_ptr<Host> client;
  std::unique_ptr<Host> server;

  void SetUp() override {
    router.attach_network(external, Ipv4Address(172, 16, 0, 1), 24);
    router.attach_network(cluster, Ipv4Address(10, 0, 0, 1), 24);

    client = std::make_unique<Host>(sched, fabric, "client");
    client->add_interface(external, Ipv4Address(172, 16, 0, 2), 24);
    client->set_default_gateway(Ipv4Address(172, 16, 0, 1));

    server = std::make_unique<Host>(sched, fabric, "server");
    server->add_interface(cluster, Ipv4Address(10, 0, 0, 2), 24);
    server->set_default_gateway(Ipv4Address(10, 0, 0, 1));
  }
};

TEST_F(RouterTest, ForwardsAcrossSegments) {
  int got = 0;
  server->open_udp(9000, [&](const Host::UdpContext& ctx, const util::Bytes&) {
    ++got;
    EXPECT_EQ(ctx.src_ip, Ipv4Address(172, 16, 0, 2));
  });
  client->send_udp(Ipv4Address(10, 0, 0, 2), 9000, 1, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(router.host().counters().ip_forwarded, 1u);
}

TEST_F(RouterTest, RoundTripThroughRouter) {
  server->open_udp(9000, [&](const Host::UdpContext& ctx, const util::Bytes&) {
    server->send_udp_from(ctx.dst_ip, ctx.src_ip, ctx.src_port, ctx.dst_port,
                          {42});
  });
  int replies = 0;
  client->open_udp(1, [&](const Host::UdpContext&, const util::Bytes& p) {
    EXPECT_EQ(p[0], 42);
    ++replies;
  });
  client->send_udp(Ipv4Address(10, 0, 0, 2), 9000, 1, {1});
  sched.run_all();
  EXPECT_EQ(replies, 1);
}

TEST_F(RouterTest, TtlExpiryDropsPacket) {
  // Two routers in a loop would decrement TTL to zero; emulate by sending a
  // packet with ttl=1 through the router.
  server->open_udp(9000, [](const Host::UdpContext&, const util::Bytes&) {});
  // Craft a ttl=1 packet by sending from a host whose stack we can reach:
  // simplest is via the router's own forward path with a pre-built frame.
  UdpDatagram dgram{1, 9000, {1}};
  Ipv4Packet pkt;
  pkt.src = Ipv4Address(172, 16, 0, 2);
  pkt.dst = Ipv4Address(10, 0, 0, 2);
  pkt.ttl = 1;
  pkt.payload = dgram.encode();
  // Resolve router MAC first through a normal exchange.
  client->send_udp(Ipv4Address(10, 0, 0, 2), 9000, 1, {0});
  sched.run_all();
  auto fwd_before = router.host().counters().ip_forwarded;
  auto router_mac = *client->arp_cache().lookup(Ipv4Address(172, 16, 0, 1),
                                                sched.now());
  Frame f{client->mac(0), router_mac, EtherType::kIpv4, pkt.encode()};
  fabric.send(client->nic_id(0), std::move(f));
  sched.run_all();
  EXPECT_EQ(router.host().counters().ip_forwarded, fwd_before);
}

TEST_F(RouterTest, VipFailoverAcrossRouterNeedsArpSpoof) {
  // Figure 3: server owns a VIP; it dies; a second server takes the VIP and
  // must spoof the ROUTER's cache for forwarding to resume.
  auto vip = Ipv4Address(10, 0, 0, 100);
  auto server2 = std::make_unique<Host>(sched, fabric, "server2");
  server2->add_interface(cluster, Ipv4Address(10, 0, 0, 3), 24);
  server2->set_default_gateway(Ipv4Address(10, 0, 0, 1));

  int got1 = 0, got2 = 0;
  server->open_udp(9000, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got1;
  });
  server2->open_udp(9000, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got2;
  });
  server->add_alias(0, vip);

  client->send_udp(vip, 9000, 1, {1});
  sched.run_all();
  EXPECT_EQ(got1, 1);

  server->fail();
  server2->add_alias(0, vip);
  client->send_udp(vip, 9000, 1, {2});
  sched.run_all();
  EXPECT_EQ(got2, 0);  // router cache still points at the dead server

  server2->send_spoofed_reply(0, vip, Ipv4Address(10, 0, 0, 1));
  sched.run_all();
  client->send_udp(vip, 9000, 1, {3});
  sched.run_all();
  EXPECT_EQ(got2, 1);
}

TEST_F(RouterTest, StaticRouteViaSecondRouter) {
  // A third network reachable only via another router on the cluster side.
  SegmentId back = fabric.add_segment();
  Router inner{sched, fabric, "inner"};
  inner.attach_network(cluster, Ipv4Address(10, 0, 0, 200), 24);
  inner.attach_network(back, Ipv4Address(192, 168, 5, 1), 24);
  auto db = std::make_unique<Host>(sched, fabric, "db");
  db->add_interface(back, Ipv4Address(192, 168, 5, 2), 24);
  db->set_default_gateway(Ipv4Address(192, 168, 5, 1));

  router.host().add_route(Ipv4Network(Ipv4Address(192, 168, 5, 0), 24),
                          Ipv4Address(10, 0, 0, 200));

  int got = 0;
  db->open_udp(9000, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got;
  });
  client->send_udp(Ipv4Address(192, 168, 5, 2), 9000, 1, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace wam::net
