// Weighted load balancing: shares proportional to per-server capacity
// weights, at the pure-procedure level and through the full stack.
#include <gtest/gtest.h>

#include "wackamole/balance.hpp"
#include "wackamole/conf_parser.hpp"
#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

using wackamole::MemberInfo;
using wackamole::VipTable;

gcs::MemberId member(int n) {
  return gcs::MemberId{
      gcs::DaemonId(net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(n))),
      1, "w"};
}

std::vector<std::string> groups(int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back("g" + std::to_string(10 + i));
  }
  return out;
}

TEST(WeightedBalance, SharesProportionalToWeights) {
  VipTable table;
  auto all = groups(9);
  for (const auto& g : all) table.set_owner(g, member(1));
  std::vector<MemberInfo> members = {
      MemberInfo{member(1), true, 2, {}},  // weight 2
      MemberInfo{member(2), true, 1, {}},  // weight 1
  };
  auto allocation = wackamole::balance_ips(all, table, members);
  std::map<gcs::MemberId, int> load;
  for (const auto& [g, m] : allocation) ++load[m];
  EXPECT_EQ(load[member(1)], 6);  // 9 * 2/3
  EXPECT_EQ(load[member(2)], 3);  // 9 * 1/3
}

TEST(WeightedBalance, RemainderGoesToLargestFraction) {
  VipTable table;
  auto all = groups(10);
  for (const auto& g : all) table.set_owner(g, member(1));
  std::vector<MemberInfo> members = {
      MemberInfo{member(1), true, 1, {}},
      MemberInfo{member(2), true, 2, {}},
  };
  // 10 * 1/3 = 3.33, 10 * 2/3 = 6.67: remainder goes to member 2.
  auto allocation = wackamole::balance_ips(all, table, members);
  std::map<gcs::MemberId, int> load;
  for (const auto& [g, m] : allocation) ++load[m];
  EXPECT_EQ(load[member(1)], 3);
  EXPECT_EQ(load[member(2)], 7);
}

TEST(WeightedBalance, EqualWeightsMatchUnweightedBehaviour) {
  VipTable table;
  auto all = groups(8);
  for (const auto& g : all) table.set_owner(g, member(1));
  std::vector<MemberInfo> members = {
      MemberInfo{member(1), true, 3, {}},
      MemberInfo{member(2), true, 3, {}},
  };
  auto allocation = wackamole::balance_ips(all, table, members);
  std::map<gcs::MemberId, int> load;
  for (const auto& [g, m] : allocation) ++load[m];
  EXPECT_EQ(load[member(1)], 4);
  EXPECT_EQ(load[member(2)], 4);
}

TEST(WeightedBalance, ReallocateFavoursBiggerServers) {
  // Empty table, 6 holes, weights 2:1 -> the weight-2 server should end up
  // with about twice the addresses.
  VipTable table;
  auto all = groups(6);
  std::vector<MemberInfo> members = {
      MemberInfo{member(1), true, 2, {}},
      MemberInfo{member(2), true, 1, {}},
  };
  auto assignments = wackamole::reallocate_ips(all, table, members);
  std::map<gcs::MemberId, int> load;
  for (const auto& [g, m] : assignments) ++load[m];
  EXPECT_EQ(load[member(1)], 4);
  EXPECT_EQ(load[member(2)], 2);
}

TEST(WeightedBalance, EndToEndWeightsPropagateViaStateMsgs) {
  auto heavy = test_config(9);
  heavy.weight = 2;
  heavy.balance_timeout = sim::seconds(5.0);
  auto light = test_config(9);
  light.weight = 1;
  light.balance_timeout = sim::seconds(5.0);

  WamCluster c(3, light);
  // Server 0 is the heavyweight.
  c.wams[0] = std::make_unique<wackamole::Daemon>(
      c.sched, heavy, *c.daemons[0], *c.ipmgrs[0], &c.log);
  c.start_wam();
  c.run(sim::seconds(12.0));  // converge + one balance round
  c.expect_correctness({0, 1, 2}, "weighted");
  // 9 VIPs at weights 2:1:1 -> 4 or 5 for the heavy server, 2-3 each for
  // the light ones.
  EXPECT_GE(c.wams[0]->owned().size(), 4u);
  EXPECT_LE(c.wams[1]->owned().size(), 3u);
  EXPECT_LE(c.wams[2]->owned().size(), 3u);
}

TEST(WeightedBalance, ConfWeightKeyParses) {
  auto c = wackamole::parse_config(
      "Weight = 4\nVirtualInterfaces {\n{ if0: 10.0.0.1 }\n}\n");
  EXPECT_EQ(c.weight, 4);
  EXPECT_NE(wackamole::render_config(c).find("Weight = 4"),
            std::string::npos);
  EXPECT_THROW(wackamole::parse_config(
                   "Weight = 0\nVirtualInterfaces {\n{ if0: 10.0.0.1 }\n}\n"),
               wackamole::ConfigError);
}

}  // namespace
}  // namespace wam::testing
