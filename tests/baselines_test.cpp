#include <gtest/gtest.h>

#include <memory>

#include "baselines/fake.hpp"
#include "baselines/hsrp.hpp"
#include "baselines/vrrp.hpp"
#include "net/fabric.hpp"

namespace wam::baselines {
namespace {

struct BaselineTest : ::testing::Test {
  sim::Scheduler sched;
  net::Fabric fabric{sched};
  net::SegmentId seg = fabric.add_segment();

  std::unique_ptr<net::Host> make_host(const std::string& name, int octet) {
    auto h = std::make_unique<net::Host>(sched, fabric, name);
    h->add_interface(
        seg, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(octet)), 24);
    return h;
  }

  net::Ipv4Address vip() { return net::Ipv4Address(10, 0, 0, 100); }
};

TEST_F(BaselineTest, VrrpElectsHighestPriority) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  VrrpConfig ca{1, {vip()}, 0, 200, sim::seconds(1.0), true, 112};
  VrrpConfig cb{1, {vip()}, 0, 100, sim::seconds(1.0), true, 112};
  VrrpRouter ra(*a, ca), rb(*b, cb);
  ra.start();
  rb.start();
  sched.run_for(sim::seconds(10.0));
  EXPECT_TRUE(ra.is_master());
  EXPECT_FALSE(rb.is_master());
  EXPECT_TRUE(a->owns_ip(vip()));
  EXPECT_FALSE(b->owns_ip(vip()));
}

TEST_F(BaselineTest, VrrpBackupTakesOverWithinMasterDownInterval) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  VrrpRouter ra(*a, VrrpConfig{1, {vip()}, 0, 200, sim::seconds(1.0), true, 112});
  VrrpRouter rb(*b, VrrpConfig{1, {vip()}, 0, 100, sim::seconds(1.0), true, 112});
  ra.start();
  rb.start();
  sched.run_for(sim::seconds(10.0));
  ASSERT_TRUE(ra.is_master());

  auto fail_time = sched.now();
  a->fail();
  while (!rb.is_master() && sched.now() - fail_time < sim::seconds(10.0)) {
    sched.run_for(sim::milliseconds(50));
  }
  ASSERT_TRUE(rb.is_master());
  double secs = sim::to_seconds(sched.now() - fail_time);
  // master_down = 3*1s + skew((256-100)/256 s) ~ 3.6 s, armed from the last
  // advertisement, so the client-side takeover latency falls within
  // (master_down - advert_interval, master_down].
  EXPECT_GE(secs, 2.5);
  EXPECT_LE(secs, 3.7);
  EXPECT_TRUE(b->owns_ip(vip()));
}

TEST_F(BaselineTest, VrrpPreemptOnRecovery) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  VrrpRouter ra(*a, VrrpConfig{1, {vip()}, 0, 200, sim::seconds(1.0), true, 112});
  VrrpRouter rb(*b, VrrpConfig{1, {vip()}, 0, 100, sim::seconds(1.0), true, 112});
  ra.start();
  rb.start();
  sched.run_for(sim::seconds(10.0));
  a->fail();
  sched.run_for(sim::seconds(10.0));
  ASSERT_TRUE(rb.is_master());
  a->recover();
  // The recovered higher-priority master keeps advertising; the lower one
  // steps down on its advert.
  sched.run_for(sim::seconds(10.0));
  EXPECT_TRUE(ra.is_master());
  EXPECT_FALSE(rb.is_master());
}

TEST_F(BaselineTest, VrrpMasterDownIntervalFormula) {
  auto a = make_host("a", 1);
  VrrpRouter r(*a, VrrpConfig{1, {vip()}, 0, 100, sim::seconds(1.0), true, 112});
  // 3 * 1s + (256-100)/256 s = 3.609375 s
  EXPECT_NEAR(sim::to_seconds(r.master_down_interval()), 3.609, 0.01);
}

TEST_F(BaselineTest, HsrpElectsActiveAndStandby) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  HsrpRouter ra(*a, HsrpConfig{1, {vip()}, 0, 200,
                               sim::seconds(3.0), sim::seconds(10.0), 1985});
  HsrpRouter rb(*b, HsrpConfig{1, {vip()}, 0, 100,
                               sim::seconds(3.0), sim::seconds(10.0), 1985});
  ra.start();
  rb.start();
  sched.run_for(sim::seconds(40.0));
  EXPECT_TRUE(ra.is_active());
  EXPECT_EQ(rb.state(), HsrpState::kStandby);
  EXPECT_TRUE(a->owns_ip(vip()));
}

TEST_F(BaselineTest, HsrpStandbyTakesOverWithinHoldTime) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  HsrpRouter ra(*a, HsrpConfig{1, {vip()}, 0, 200,
                               sim::seconds(3.0), sim::seconds(10.0), 1985});
  HsrpRouter rb(*b, HsrpConfig{1, {vip()}, 0, 100,
                               sim::seconds(3.0), sim::seconds(10.0), 1985});
  ra.start();
  rb.start();
  sched.run_for(sim::seconds(40.0));
  ASSERT_TRUE(ra.is_active());
  ASSERT_EQ(rb.state(), HsrpState::kStandby);

  auto fail_time = sched.now();
  a->fail();
  while (!rb.is_active() && sched.now() - fail_time < sim::seconds(20.0)) {
    sched.run_for(sim::milliseconds(50));
  }
  ASSERT_TRUE(rb.is_active());
  double secs = sim::to_seconds(sched.now() - fail_time);
  // Hold time 10 s; detection within (hold - hello, hold].
  EXPECT_GE(secs, 6.9);
  EXPECT_LE(secs, 10.2);
}

TEST_F(BaselineTest, FakeBackupTakesOverAfterMissedProbes) {
  auto main = make_host("main", 1);
  auto backup = make_host("backup", 2);
  main->add_alias(0, vip());
  FakeResponder responder(*main);
  responder.start();
  FakeConfig cfg;
  cfg.main_ip = net::Ipv4Address(10, 0, 0, 1);
  cfg.vips = {vip()};
  FakeBackup fb(*backup, cfg);
  fb.start();
  sched.run_for(sim::seconds(10.0));
  EXPECT_FALSE(fb.holding());

  auto fail_time = sched.now();
  main->fail();
  while (!fb.holding() && sched.now() - fail_time < sim::seconds(20.0)) {
    sched.run_for(sim::milliseconds(50));
  }
  ASSERT_TRUE(fb.holding());
  EXPECT_TRUE(backup->owns_ip(vip()));
  double secs = sim::to_seconds(sched.now() - fail_time);
  // 4 missed probes at 1 s intervals: ~4-5 s.
  EXPECT_GE(secs, 3.0);
  EXPECT_LE(secs, 5.5);
}

TEST_F(BaselineTest, FakeReleasesWhenMainReturns) {
  auto main = make_host("main", 1);
  auto backup = make_host("backup", 2);
  FakeResponder responder(*main);
  responder.start();
  FakeConfig cfg;
  cfg.main_ip = net::Ipv4Address(10, 0, 0, 1);
  cfg.vips = {vip()};
  cfg.release_on_return = true;
  FakeBackup fb(*backup, cfg);
  fb.start();
  main->fail();
  sched.run_for(sim::seconds(10.0));
  ASSERT_TRUE(fb.holding());
  main->recover();
  sched.run_for(sim::seconds(10.0));
  EXPECT_FALSE(fb.holding());
  EXPECT_FALSE(backup->owns_ip(vip()));
}

TEST_F(BaselineTest, StateNamesRender) {
  EXPECT_STREQ(vrrp_state_name(VrrpState::kMaster), "MASTER");
  EXPECT_STREQ(hsrp_state_name(HsrpState::kStandby), "STANDBY");
}

}  // namespace
}  // namespace wam::baselines
