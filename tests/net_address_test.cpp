#include "net/address.hpp"

#include <gtest/gtest.h>

namespace wam::net {
namespace {

TEST(MacAddress, FromIndexAndToString) {
  auto m = MacAddress::from_index(0x0107);
  EXPECT_EQ(m.to_string(), "02:00:00:00:01:07");
}

TEST(MacAddress, ParseRoundTrip) {
  auto m = MacAddress::parse("02:00:00:00:01:07");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, MacAddress::from_index(0x0107));
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddress::parse("not-a-mac").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:00:01").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:00:01:fff").has_value());
}

TEST(MacAddress, BroadcastAndNull) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress{}.is_null());
  EXPECT_FALSE(MacAddress::from_index(1).is_broadcast());
}

TEST(MacAddress, Ordering) {
  EXPECT_LT(MacAddress::from_index(1), MacAddress::from_index(2));
}

TEST(Ipv4Address, ParseAndFormat) {
  auto a = Ipv4Address::parse("192.168.0.17");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "192.168.0.17");
  EXPECT_EQ(*a, Ipv4Address(192, 168, 0, 17));
}

TEST(Ipv4Address, ParseRejectsBadInput) {
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
}

TEST(Ipv4Address, OrderingMatchesNumericValue) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

TEST(Ipv4Address, BroadcastAndAny) {
  EXPECT_TRUE(Ipv4Address::broadcast().is_broadcast());
  EXPECT_TRUE(Ipv4Address::any().is_any());
}

TEST(Ipv4Network, ContainsWithinPrefix) {
  Ipv4Network n(Ipv4Address(192, 168, 1, 0), 24);
  EXPECT_TRUE(n.contains(Ipv4Address(192, 168, 1, 1)));
  EXPECT_TRUE(n.contains(Ipv4Address(192, 168, 1, 255)));
  EXPECT_FALSE(n.contains(Ipv4Address(192, 168, 2, 1)));
}

TEST(Ipv4Network, BaseIsMasked) {
  Ipv4Network n(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_EQ(n.base(), Ipv4Address(10, 1, 0, 0));
  EXPECT_EQ(n.to_string(), "10.1.0.0/16");
}

TEST(Ipv4Network, ZeroPrefixMatchesEverything) {
  Ipv4Network n(Ipv4Address(1, 2, 3, 4), 0);
  EXPECT_TRUE(n.contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(n.contains(Ipv4Address(0, 0, 0, 1)));
}

TEST(Ipv4Network, SlashThirtyTwoIsExact) {
  Ipv4Network n(Ipv4Address(8, 8, 8, 8), 32);
  EXPECT_TRUE(n.contains(Ipv4Address(8, 8, 8, 8)));
  EXPECT_FALSE(n.contains(Ipv4Address(8, 8, 8, 9)));
}

TEST(Ipv4Network, ParseCidr) {
  auto n = Ipv4Network::parse("172.16.0.0/12");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->prefix_len(), 12);
  EXPECT_TRUE(n->contains(Ipv4Address(172, 20, 1, 1)));
  EXPECT_FALSE(Ipv4Network::parse("172.16.0.0").has_value());
  EXPECT_FALSE(Ipv4Network::parse("172.16.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Network::parse("172.16.0.0/ab").has_value());
}

}  // namespace
}  // namespace wam::net
