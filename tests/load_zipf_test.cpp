// ZipfSampler pins: the empirical draw frequencies must match the
// closed-form pmf, and the degenerate exponents must behave.
#include "load/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace wam::load {
namespace {

TEST(Zipf, PmfMatchesClosedForm) {
  // p(k) = (1/k^s) / H_{n,s} for 1-based rank k.
  const std::uint32_t n = 20;
  const double s = 1.2;
  ZipfSampler z(n, s);
  double h = 0;
  for (std::uint32_t k = 1; k <= n; ++k) h += 1.0 / std::pow(k, s);
  double total = 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(z.pmf(k), (1.0 / std::pow(k + 1, s)) / h, 1e-12);
    total += z.pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, EmpiricalFrequenciesMatchPmf) {
  const std::uint32_t n = 64;
  ZipfSampler z(n, 1.0);
  sim::Rng rng(7);
  const int draws = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) ++counts[z.sample(rng)];
  // Each rank's frequency within 4 sigma of its binomial expectation
  // (ranks with vanishing mass get an absolute floor).
  for (std::uint32_t k = 0; k < n; ++k) {
    double p = z.pmf(k);
    double expected = p * draws;
    double sigma = std::sqrt(draws * p * (1 - p));
    EXPECT_NEAR(counts[k], expected, 4 * sigma + 5) << "rank " << k;
  }
  // Zipf s=1: rank 0 draws roughly twice rank 1, four times rank 3.
  EXPECT_GT(counts[0], counts[1] * 1.7);
  EXPECT_LT(counts[0], counts[1] * 2.3);
}

TEST(Zipf, ZeroSkewIsUniform) {
  const std::uint32_t n = 10;
  ZipfSampler z(n, 0.0);
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(z.pmf(k), 1.0 / n, 1e-12);
  }
  sim::Rng rng(3);
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.sample(rng)];
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k], 5000, 400) << "rank " << k;
  }
}

TEST(Zipf, SingleItemAlwaysRankZero) {
  ZipfSampler z(1, 1.0);
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(z.pmf(0), 1.0);
}

TEST(Zipf, SameSeedSameSequence) {
  ZipfSampler z(32, 0.9);
  sim::Rng a(11);
  sim::Rng b(11);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z.sample(a), z.sample(b));
}

TEST(Zipf, RejectsInvalidParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), util::ContractViolation);
  EXPECT_THROW(ZipfSampler(5, -0.1), util::ContractViolation);
}

}  // namespace
}  // namespace wam::load
