#include "sim/log.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace wam::sim {
namespace {

TEST(Log, RecordsCarryVirtualTimestamps) {
  Scheduler sched;
  Log log(sched);
  Logger logger(&log, "test/unit");
  sched.run_for(seconds(2.5));
  logger.info("hello %d", 42);
  ASSERT_EQ(log.records().size(), 1u);
  const auto& rec = log.records().front();
  EXPECT_EQ(rec.time, TimePoint(seconds(2.5)));
  EXPECT_EQ(rec.component, "test/unit");
  EXPECT_EQ(rec.message, "hello 42");
  EXPECT_EQ(rec.level, LogLevel::kInfo);
}

TEST(Log, FindFiltersByComponentPrefixAndNeedle) {
  Scheduler sched;
  Log log(sched);
  Logger a(&log, "gcs/s1");
  Logger b(&log, "wam/s1");
  a.info("installed view 3");
  a.warn("fault detected");
  b.info("installed table");
  EXPECT_EQ(log.count("gcs/"), 2u);
  EXPECT_EQ(log.count("wam/"), 1u);
  EXPECT_EQ(log.count("gcs/", "installed"), 1u);
  EXPECT_EQ(log.count("", "installed"), 2u);
  EXPECT_TRUE(log.find("nope/").empty());
}

TEST(Log, MinLevelSuppresses) {
  Scheduler sched;
  Log log(sched);
  log.set_min_level(LogLevel::kWarn);
  Logger logger(&log, "x");
  logger.debug("quiet");
  logger.info("quiet");
  logger.warn("loud");
  logger.error("loud");
  EXPECT_EQ(log.records().size(), 2u);
}

TEST(Log, CapacityBoundsRing) {
  Scheduler sched;
  Log log(sched, 8);
  Logger logger(&log, "x");
  for (int i = 0; i < 32; ++i) logger.info("m%d", i);
  EXPECT_EQ(log.records().size(), 8u);
  EXPECT_EQ(log.records().back().message, "m31");
  EXPECT_EQ(log.records().front().message, "m24");
}

TEST(Log, RenderIncludesLevelAndComponent) {
  Scheduler sched;
  Log log(sched);
  Logger logger(&log, "gcs/s2");
  logger.error("boom");
  auto text = log.records().front().render();
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("[gcs/s2]"), std::string::npos);
  EXPECT_NE(text.find("boom"), std::string::npos);
}

TEST(Log, NullLoggerIsSafe) {
  Logger logger;  // unattached
  EXPECT_FALSE(logger.enabled());
  logger.info("goes nowhere %s", "safely");
}

TEST(Log, ClearEmpties) {
  Scheduler sched;
  Log log(sched);
  Logger logger(&log, "x");
  logger.info("one");
  log.clear();
  EXPECT_TRUE(log.records().empty());
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace wam::sim
