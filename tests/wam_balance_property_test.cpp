// Fuzzed properties of the deterministic allocation procedures: for random
// tables, member sets, maturity flags and preferences,
//   * reallocate_ips covers every hole exactly once with mature members,
//   * balance_ips produces a complete allocation with loads within one,
//   * both are pure functions (same inputs -> same outputs), the property
//     Lemma 1/2 rely on.
#include <gtest/gtest.h>

#include <map>

#include "sim/random.hpp"
#include "wackamole/balance.hpp"

namespace wam::wackamole {
namespace {

gcs::MemberId member(int n) {
  return gcs::MemberId{
      gcs::DaemonId(net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(n))),
      1, "w"};
}

struct Fuzz {
  std::vector<std::string> groups;
  std::vector<MemberInfo> members;
  VipTable table;
};

Fuzz make_fuzz(sim::Rng& rng) {
  Fuzz f;
  int n_groups = static_cast<int>(rng.range(1, 30));
  int n_members = static_cast<int>(rng.range(1, 8));
  for (int i = 0; i < n_groups; ++i) {
    f.groups.push_back("g" + std::to_string(100 + i));
  }
  for (int m = 0; m < n_members; ++m) {
    MemberInfo mi;
    mi.id = member(m + 1);
    mi.mature = rng.chance(0.8);
    for (const auto& g : f.groups) {
      if (rng.chance(0.1)) mi.preferred.insert(g);
    }
    f.members.push_back(std::move(mi));
  }
  // Random partial table: some groups owned by members (possibly departed
  // ones), some unowned.
  for (const auto& g : f.groups) {
    double roll = rng.uniform();
    if (roll < 0.4) {
      f.table.set_owner(
          g, f.members[rng.below(f.members.size())].id);
    } else if (roll < 0.5) {
      f.table.set_owner(g, member(99));  // departed member
    }
  }
  return f;
}

class BalanceFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BalanceFuzzTest, ReallocateProperties) {
  sim::Rng rng(GetParam() * 1117);
  for (int iter = 0; iter < 40; ++iter) {
    auto f = make_fuzz(rng);
    auto a1 = reallocate_ips(f.groups, f.table, f.members);
    auto a2 = reallocate_ips(f.groups, f.table, f.members);
    EXPECT_EQ(a1, a2) << "non-deterministic reallocate";

    bool any_mature = false;
    for (const auto& m : f.members) any_mature |= m.mature;
    auto holes = f.table.uncovered(f.groups);
    if (!any_mature) {
      EXPECT_TRUE(a1.empty());
      continue;
    }
    EXPECT_EQ(a1.size(), holes.size());
    for (const auto& [g, owner] : a1) {
      bool owner_is_mature_member = false;
      for (const auto& m : f.members) {
        if (m.id == owner) owner_is_mature_member = m.mature;
      }
      EXPECT_TRUE(owner_is_mature_member)
          << g << " assigned to immature/unknown " << owner.to_string();
      EXPECT_FALSE(f.table.owner(g).has_value()) << g << " was not a hole";
    }
  }
}

TEST_P(BalanceFuzzTest, BalanceProperties) {
  sim::Rng rng(GetParam() * 2221);
  for (int iter = 0; iter < 40; ++iter) {
    auto f = make_fuzz(rng);
    auto a1 = balance_ips(f.groups, f.table, f.members);
    auto a2 = balance_ips(f.groups, f.table, f.members);
    EXPECT_EQ(a1, a2) << "non-deterministic balance";

    bool any_mature = false;
    for (const auto& m : f.members) any_mature |= m.mature;
    if (!any_mature) {
      EXPECT_TRUE(a1.empty());
      continue;
    }
    // Complete allocation...
    EXPECT_EQ(a1.size(), f.groups.size());
    // ...to mature members only...
    std::map<gcs::MemberId, std::size_t> load;
    for (const auto& [g, owner] : a1) {
      bool mature = false;
      for (const auto& m : f.members) {
        if (m.id == owner) mature = m.mature;
      }
      EXPECT_TRUE(mature);
      ++load[owner];
    }
    // ...with loads within one of each other.
    std::size_t lo = SIZE_MAX, hi = 0;
    for (const auto& m : f.members) {
      if (!m.mature) continue;
      auto it = load.find(m.id);
      std::size_t l = it == load.end() ? 0 : it->second;
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
    EXPECT_LE(hi - lo, 1u) << "unbalanced allocation";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalanceFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace wam::wackamole
