// Chaos-campaign decision identity: a cluster-profile seed executed on the
// sharded engine must reproduce the sequential engine's verdicts AND its
// byte-exact observability timeline. Chaos worlds carry no client traffic
// (all protocol activity lives on shard 0), so even the cross-sender
// same-nanosecond caveat of docs/PARALLEL.md cannot bite: the comparison
// is full-bytes, no canonicalization.
#include "chaos/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace wam::chaos {
namespace {

CampaignOptions small_campaign() {
  CampaignOptions opt;
  opt.generator.rounds = 4;  // keep the horizon short; CI runs more seeds
  opt.shrink = false;
  opt.shard_threads = false;
  return opt;
}

TEST(ChaosShard, SeededRunMatchesSequentialEngineByteForByte) {
  for (std::uint64_t seed : {4ULL, 63ULL}) {
    auto opt = small_campaign();
    opt.shards = 0;  // the legacy engine
    const auto legacy = run_seed(seed, Profile::kCluster, opt);
    opt.shards = 1;  // sharded engine, oracle configuration
    const auto oracle = run_seed(seed, Profile::kCluster, opt);
    opt.shards = 2;
    const auto sharded = run_seed(seed, Profile::kCluster, opt);

    // Oracle vs sharded: the tentpole contract, full timeline bytes.
    EXPECT_EQ(oracle.violations.size(), sharded.violations.size()) << seed;
    EXPECT_EQ(oracle.timeline_json, sharded.timeline_json) << seed;
    // Sharded vs legacy: same verdicts (the engines draw fabric jitter
    // from differently-derived streams, so timelines may differ in
    // nanosecond timing but never in outcome).
    EXPECT_EQ(legacy.passed(), sharded.passed()) << seed;
    EXPECT_EQ(legacy.passed(), oracle.passed()) << seed;
  }
}

TEST(ChaosShard, ThreadedShardedRunMatchesSerial) {
  auto opt = small_campaign();
  opt.shards = 2;
  opt.shard_threads = false;
  const auto serial = run_seed(11, Profile::kCluster, opt);
  opt.shard_threads = true;
  const auto threaded = run_seed(11, Profile::kCluster, opt);
  EXPECT_EQ(serial.timeline_json, threaded.timeline_json);
  EXPECT_EQ(serial.violations.size(), threaded.violations.size());
}

TEST(ChaosShard, RouterProfileIgnoresShardsOption) {
  auto opt = small_campaign();
  const auto plain = run_seed(7, Profile::kRouter, opt);
  opt.shards = 3;
  const auto with_flag = run_seed(7, Profile::kRouter, opt);
  EXPECT_EQ(plain.timeline_json, with_flag.timeline_json);
}

}  // namespace
}  // namespace wam::chaos
