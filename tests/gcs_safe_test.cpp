// SAFE delivery: withheld until the stability watermark (all members
// received it) passes the message; holds the total order behind it.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

struct SafeRecorder {
  std::vector<std::pair<std::string, sim::TimePoint>> messages;
  std::unique_ptr<gcs::Client> client;
  sim::Scheduler* sched;

  explicit SafeRecorder(const std::string& name, sim::Scheduler& s)
      : sched(&s) {
    gcs::ClientCallbacks cb;
    cb.on_message = [this](const gcs::GroupMessage& m) {
      messages.emplace_back(std::string(m.payload.begin(), m.payload.end()),
                            sched->now());
    };
    client = std::make_unique<gcs::Client>(name, std::move(cb));
  }

  void send(const std::string& text, gcs::ServiceType service) {
    client->multicast("g", util::Bytes(text.begin(), text.end()), service);
  }
};

struct SafeTest : ::testing::Test {
  GcsCluster c{3};
  std::vector<std::unique_ptr<SafeRecorder>> recs;

  void SetUp() override {
    c.start_all();
    c.run(sim::seconds(5.0));
    for (std::size_t i = 0; i < c.daemons.size(); ++i) {
      auto r = std::make_unique<SafeRecorder>("s" + std::to_string(i),
                                              c.sched);
      ASSERT_TRUE(r->client->connect(*c.daemons[i]));
      r->client->join("g");
      recs.push_back(std::move(r));
    }
    c.run(sim::seconds(1.0));
  }
};

TEST_F(SafeTest, EventuallyDeliveredToAll) {
  recs[0]->send("safe!", gcs::ServiceType::kSafe);
  c.run(sim::seconds(3.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 1u);
    EXPECT_EQ(r->messages[0].first, "safe!");
  }
}

TEST_F(SafeTest, SlowerThanAgreed) {
  auto start = c.sched.now();
  recs[0]->send("agreed", gcs::ServiceType::kAgreed);
  recs[0]->send("safe", gcs::ServiceType::kSafe);
  c.run(sim::seconds(3.0));
  ASSERT_EQ(recs[1]->messages.size(), 2u);
  auto agreed_latency = recs[1]->messages[0].second - start;
  auto safe_latency = recs[1]->messages[1].second - start;
  // Agreed lands within ~a millisecond; SAFE waits for stability gossip
  // (heartbeat-driven, tuned = 0.4 s).
  EXPECT_LT(sim::to_seconds(agreed_latency), 0.1);
  EXPECT_GT(sim::to_seconds(safe_latency), 0.1);
  EXPECT_LT(sim::to_seconds(safe_latency), 1.5);
}

TEST_F(SafeTest, SafeHoldsTheLineForLaterMessages) {
  // A SAFE message followed by agreed ones: total order means nobody may
  // see the agreed ones before the SAFE one.
  recs[0]->send("S", gcs::ServiceType::kSafe);
  recs[1]->send("a1", gcs::ServiceType::kAgreed);
  recs[2]->send("a2", gcs::ServiceType::kAgreed);
  c.run(sim::seconds(3.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 3u);
    EXPECT_EQ(r->messages[0].first, "S");
  }
}

TEST_F(SafeTest, IdenticalOrderEverywhere) {
  for (int i = 0; i < 6; ++i) {
    recs[static_cast<std::size_t>(i % 3)]->send(
        std::to_string(i),
        i % 2 == 0 ? gcs::ServiceType::kSafe : gcs::ServiceType::kAgreed);
  }
  c.run(sim::seconds(5.0));
  ASSERT_EQ(recs[0]->messages.size(), 6u);
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(r->messages[i].first, recs[0]->messages[i].first);
    }
  }
}

TEST_F(SafeTest, SingletonViewDeliversSafe) {
  GcsCluster single(1);
  single.start_all();
  single.run(sim::seconds(5.0));
  SafeRecorder r("solo", single.sched);
  ASSERT_TRUE(r.client->connect(*single.daemons[0]));
  r.client->join("g");
  single.run(sim::seconds(1.0));
  r.send("alone", gcs::ServiceType::kSafe);
  single.run(sim::seconds(2.0));
  ASSERT_EQ(r.messages.size(), 1u);
}

TEST_F(SafeTest, ViewChangeReleasesWithheldMessages) {
  // Send a SAFE message and partition before stability can be reached at
  // the tuned heartbeat cadence; the co-moving members must still deliver
  // it (identically) through the install-time flush.
  recs[0]->send("held", gcs::ServiceType::kSafe);
  c.partition({{0, 1}, {2}});
  c.run(sim::seconds(8.0));
  EXPECT_EQ(recs[0]->messages.size(), recs[1]->messages.size());
  if (!recs[0]->messages.empty()) {
    EXPECT_EQ(recs[0]->messages[0].first, "held");
    EXPECT_EQ(recs[1]->messages[0].first, "held");
  }
  // Delivered at most once anywhere.
  for (auto& r : recs) EXPECT_LE(r->messages.size(), 1u);
}

TEST_F(SafeTest, LossyNetworkStillDeliversSafely) {
  c.fabric.segment_config(c.seg).drop_probability = 0.10;
  for (int i = 0; i < 10; ++i) {
    recs[0]->send("m" + std::to_string(i), gcs::ServiceType::kSafe);
  }
  c.run(sim::seconds(10.0));
  c.fabric.segment_config(c.seg).drop_probability = 0.0;
  c.run(sim::seconds(5.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 10u);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(r->messages[static_cast<std::size_t>(i)].first,
                "m" + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace wam::testing
