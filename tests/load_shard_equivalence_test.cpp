// Sequential-vs-sharded decision identity for the load plane.
//
// The sharded engine's contract (docs/PARALLEL.md): a world sharded N ways
// makes the same decisions as the sequential oracle (the same engine at
// N = 1), and a sharded run is bit-identical with worker threads on or
// off. The trial-level pins compare full TrialResult::to_json() bytes; the
// fabric-level pin compares per-NIC delivery journals, canonicalized
// within same-nanosecond runs (arrival order between different senders in
// the same nanosecond is the one documented freedom).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/cluster_scenario.hpp"
#include "load/generator.hpp"
#include "load/harness.hpp"
#include "net/fabric.hpp"

namespace wam::load {
namespace {

TrialOptions small_trial() {
  TrialOptions t;
  t.protocol = Protocol::kWackamole;
  t.members = 4;
  t.vips = 16;
  t.flows_per_second = 2000.0;
  t.warmup = sim::seconds(1.0);
  t.after = sim::seconds(5.0);
  t.window = sim::seconds(1.0);
  t.clients = 3;
  t.shard_threads = false;  // serial windows: fast on 1-core CI, TSan-free
  return t;
}

TEST(ShardEquivalence, ShardedTrialMatchesSequentialOracle) {
  auto t = small_trial();
  t.shards = 1;
  const auto oracle = run_failover_trial(t).to_json();
  t.shards = 4;
  EXPECT_EQ(run_failover_trial(t).to_json(), oracle);
  t.shards = 2;
  EXPECT_EQ(run_failover_trial(t).to_json(), oracle);
}

TEST(ShardEquivalence, WorkerThreadsDoNotChangeResults) {
  auto t = small_trial();
  t.shards = 3;
  t.after = sim::seconds(3.0);
  t.shard_threads = false;
  const auto serial = run_failover_trial(t).to_json();
  t.shard_threads = true;
  EXPECT_EQ(run_failover_trial(t).to_json(), serial);
}

TEST(ShardEquivalence, BaselineProtocolsRunShardedToo) {
  // The VRRP baseline LAN goes through the same ShardSet plumbing.
  auto t = small_trial();
  t.protocol = Protocol::kVrrp;
  t.members = 3;
  t.after = sim::seconds(3.0);
  t.shards = 1;
  const auto oracle = run_failover_trial(t).to_json();
  t.shards = 3;
  EXPECT_EQ(run_failover_trial(t).to_json(), oracle);
}

using Rec = net::Fabric::DeliveryRecord;

/// Sort each same-timestamp run by digest: delivery order WITHIN one
/// nanosecond at one NIC is the only thing the engines may disagree on.
std::vector<Rec> canonical(std::vector<Rec> v) {
  auto it = v.begin();
  while (it != v.end()) {
    auto run_end = it;
    while (run_end != v.end() && run_end->when == it->when) ++run_end;
    std::sort(it, run_end,
              [](const Rec& a, const Rec& b) { return a.digest < b.digest; });
    it = run_end;
  }
  return v;
}

void expect_same_journal(const std::vector<Rec>& a, const std::vector<Rec>& b,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].when.time_since_epoch().count(),
              b[i].when.time_since_epoch().count())
        << what << " record " << i;
    ASSERT_EQ(a[i].digest, b[i].digest) << what << " record " << i;
  }
}

/// Run a small cluster + client load world and return the canonicalized
/// per-NIC delivery journals (servers first, then clients).
std::vector<std::vector<Rec>> run_world(int shards) {
  apps::ClusterOptions copt;
  copt.num_servers = 3;
  copt.num_vips = 6;
  copt.with_router = false;
  copt.shards = shards;
  copt.shard_threads = false;
  copt.load_clients = 2;
  copt.seed = 9;
  apps::ClusterScenario s(copt);
  s.fabric.set_record_deliveries(true);
  s.start();
  s.run_until_stable(sim::seconds(30.0));

  for (int c = 0; c < s.num_clients(); ++c) {
    LoadOptions opt;
    for (int k = 0; k < copt.num_vips; ++k) opt.vips.push_back(s.vip(k));
    opt.flows_per_second = 400.0;
    opt.seed = 77 + static_cast<std::uint64_t>(c);
    s.attach_traffic(std::make_unique<LoadGenerator>(s.client_host(c), opt));
  }
  s.run(sim::seconds(1.0));
  s.disconnect_server(1);
  s.run(sim::seconds(2.0));
  s.reconnect_server(1);
  s.run(sim::seconds(1.0));

  std::vector<std::vector<Rec>> journals;
  for (int i = 0; i < s.num_servers(); ++i) {
    journals.push_back(canonical(s.fabric.deliveries(s.server_host(i).nic_id(0))));
  }
  for (int c = 0; c < s.num_clients(); ++c) {
    journals.push_back(canonical(s.fabric.deliveries(s.client_host(c).nic_id(0))));
  }
  return journals;
}

TEST(ShardEquivalence, PerNicDeliveryJournalsMatchOracle) {
  const auto oracle = run_world(1);
  const auto sharded = run_world(3);
  ASSERT_EQ(oracle.size(), sharded.size());
  std::uint64_t total = 0;
  for (std::size_t n = 0; n < oracle.size(); ++n) {
    expect_same_journal(oracle[n], sharded[n], "nic " + std::to_string(n));
    total += oracle[n].size();
  }
  EXPECT_GT(total, 1000u);  // the journals actually observed traffic
}

}  // namespace
}  // namespace wam::load
