#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

// A recording client: collects delivered payloads and membership views.
struct Recorder {
  std::vector<std::string> messages;  // payloads as strings
  std::vector<gcs::GroupView> views;
  int disconnects = 0;
  std::unique_ptr<gcs::Client> client;

  explicit Recorder(const std::string& name) {
    gcs::ClientCallbacks cb;
    cb.on_message = [this](const gcs::GroupMessage& m) {
      messages.emplace_back(m.payload.begin(), m.payload.end());
    };
    cb.on_membership = [this](const gcs::GroupView& v) {
      if (!v.transitional) views.push_back(v);
    };
    cb.on_disconnect = [this] { ++disconnects; };
    client = std::make_unique<gcs::Client>(name, std::move(cb));
  }

  void send(const std::string& group, const std::string& text) {
    client->multicast(group, util::Bytes(text.begin(), text.end()));
  }
};

struct OrderTest : ::testing::Test {
  GcsCluster c{4};
  std::vector<std::unique_ptr<Recorder>> recs;

  void SetUp() override {
    c.start_all();
    c.run(sim::seconds(5.0));
    for (std::size_t i = 0; i < c.daemons.size(); ++i) {
      auto r = std::make_unique<Recorder>("r" + std::to_string(i));
      ASSERT_TRUE(r->client->connect(*c.daemons[i]));
      r->client->join("g");
      recs.push_back(std::move(r));
    }
    c.run(sim::seconds(1.0));
  }
};

TEST_F(OrderTest, EveryMemberSeesIdenticalOrder) {
  recs[0]->send("g", "a");
  recs[1]->send("g", "b");
  recs[2]->send("g", "c");
  recs[3]->send("g", "d");
  c.run(sim::seconds(1.0));
  ASSERT_EQ(recs[0]->messages.size(), 4u);
  for (auto& r : recs) {
    EXPECT_EQ(r->messages, recs[0]->messages);
  }
}

TEST_F(OrderTest, SenderReceivesOwnMessages) {
  recs[1]->send("g", "hello");
  c.run(sim::seconds(1.0));
  ASSERT_EQ(recs[1]->messages.size(), 1u);
  EXPECT_EQ(recs[1]->messages[0], "hello");
}

TEST_F(OrderTest, InterleavedBurstsStayTotallyOrdered) {
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < recs.size(); ++i) {
      recs[i]->send("g", std::to_string(round) + ":" + std::to_string(i));
    }
  }
  c.run(sim::seconds(2.0));
  ASSERT_EQ(recs[0]->messages.size(), 40u);
  for (auto& r : recs) EXPECT_EQ(r->messages, recs[0]->messages);
}

TEST_F(OrderTest, NonMembersDoNotReceive) {
  recs[3]->client->leave("g");
  c.run(sim::seconds(1.0));
  recs[0]->send("g", "x");
  c.run(sim::seconds(1.0));
  EXPECT_EQ(recs[0]->messages.size(), 1u);
  EXPECT_TRUE(recs[3]->messages.empty());
}

TEST_F(OrderTest, MessagesSurviveLossyNetwork) {
  c.fabric.segment_config(c.seg).drop_probability = 0.10;
  for (int i = 0; i < 30; ++i) {
    recs[i % 4]->send("g", std::to_string(i));
  }
  c.run(sim::seconds(10.0));
  c.fabric.segment_config(c.seg).drop_probability = 0.0;
  c.run(sim::seconds(5.0));
  ASSERT_EQ(recs[0]->messages.size(), 30u);
  for (auto& r : recs) EXPECT_EQ(r->messages, recs[0]->messages);
}

TEST_F(OrderTest, DeliveredSetsAgreeAcrossViewChange) {
  // Virtual Synchrony: daemons that transition together deliver identical
  // message sets. Send a burst and partition immediately afterwards.
  for (int i = 0; i < 20; ++i) {
    recs[i % 4]->send("g", "m" + std::to_string(i));
  }
  c.partition({{0, 1, 2}, {3}});
  c.run(sim::seconds(10.0));
  // 0,1,2 moved together: identical delivered sequences.
  EXPECT_EQ(recs[0]->messages, recs[1]->messages);
  EXPECT_EQ(recs[1]->messages, recs[2]->messages);
}

TEST_F(OrderTest, MessagesSentDuringReconfigurationAreDelivered) {
  c.hosts[3]->set_interface_up(0, false);
  c.run(sim::milliseconds(500));  // detector has not fired yet (tuned: 1 s)
  recs[0]->send("g", "during");
  c.run(sim::seconds(10.0));
  // Delivered to the surviving component exactly once.
  int count = 0;
  for (const auto& m : recs[0]->messages) {
    if (m == "during") ++count;
  }
  EXPECT_EQ(count, 1);
  EXPECT_EQ(recs[1]->messages, recs[0]->messages);
  EXPECT_EQ(recs[2]->messages, recs[0]->messages);
}

TEST_F(OrderTest, NoDuplicateDeliveries) {
  for (int i = 0; i < 10; ++i) recs[0]->send("g", std::to_string(i));
  c.run(sim::seconds(2.0));
  for (auto& r : recs) {
    std::set<std::string> unique(r->messages.begin(), r->messages.end());
    EXPECT_EQ(unique.size(), r->messages.size());
  }
}

TEST_F(OrderTest, DisconnectNotifiesClient) {
  c.daemons[0]->stop();
  EXPECT_EQ(recs[0]->disconnects, 1);
  EXPECT_FALSE(recs[0]->client->connected());
}

TEST_F(OrderTest, ReconnectAfterDaemonRestart) {
  c.daemons[0]->stop();
  c.run(sim::seconds(3.0));
  c.daemons[0]->start();
  c.run(sim::seconds(5.0));
  ASSERT_TRUE(recs[0]->client->connect(*c.daemons[0]));
  recs[0]->client->join("g");
  c.run(sim::seconds(2.0));
  recs[1]->send("g", "wb");
  c.run(sim::seconds(1.0));
  EXPECT_FALSE(recs[0]->messages.empty());
  EXPECT_EQ(recs[0]->messages.back(), "wb");
}

}  // namespace
}  // namespace wam::testing
