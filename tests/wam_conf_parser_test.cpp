#include "wackamole/conf_parser.hpp"

#include <gtest/gtest.h>

namespace wam::wackamole {
namespace {

constexpr const char* kFull = R"(
# production-ish config
Group = wack1
Mature = 30s
Balance = 60s
SpreadRetryInterval = 2s
ArpShare = 10s
Announce = 500ms
RepresentativeDriven = yes
Prefer = web-a, web-b

VirtualInterfaces {
  { if0: 10.0.0.100/32 }
  web-a { if0: 10.0.0.101/32 }
  web-b { if0: 10.0.0.102/32 }
  router { if0: 203.0.113.1/32 if1: 198.51.100.101/32 }
}
)";

TEST(ConfParser, FullConfig) {
  auto c = parse_config(kFull);
  EXPECT_EQ(c.group, "wack1");
  EXPECT_EQ(sim::to_seconds(c.maturity_timeout), 30.0);
  EXPECT_FALSE(c.start_mature);
  EXPECT_EQ(sim::to_seconds(c.balance_timeout), 60.0);
  EXPECT_EQ(sim::to_seconds(c.reconnect_interval), 2.0);
  EXPECT_EQ(sim::to_seconds(c.arp_share_interval), 10.0);
  EXPECT_EQ(sim::to_millis(c.announce_interval), 500.0);
  EXPECT_TRUE(c.representative_driven);
  EXPECT_EQ(c.preferred, (std::vector<std::string>{"web-a", "web-b"}));
  ASSERT_EQ(c.vip_groups.size(), 4u);
  EXPECT_EQ(c.vip_groups[0].name, "10.0.0.100");  // unnamed: first address
  EXPECT_EQ(c.vip_groups[3].name, "router");
  ASSERT_EQ(c.vip_groups[3].addresses.size(), 2u);
  EXPECT_EQ(c.vip_groups[3].addresses[1].second, 1);  // if1
}

TEST(ConfParser, MinimalConfig) {
  auto c = parse_config("VirtualInterfaces {\n{ if0: 10.0.0.1 }\n}\n");
  EXPECT_EQ(c.group, "wackamole");
  ASSERT_EQ(c.vip_groups.size(), 1u);
}

TEST(ConfParser, MatureZeroMeansStartMature) {
  auto c = parse_config(
      "Mature = 0s\nVirtualInterfaces {\n{ if0: 10.0.0.1 }\n}\n");
  EXPECT_TRUE(c.start_mature);
}

TEST(ConfParser, PreferNoneIsEmpty) {
  auto c = parse_config(
      "Prefer = None\nVirtualInterfaces {\n{ if0: 10.0.0.1 }\n}\n");
  EXPECT_TRUE(c.preferred.empty());
}

TEST(ConfParser, SlashSuffixOptional) {
  auto c = parse_config("VirtualInterfaces {\n{ if2: 10.0.0.9 }\n}\n");
  EXPECT_EQ(c.vip_groups[0].addresses[0].second, 2);
  EXPECT_EQ(c.vip_groups[0].addresses[0].first,
            net::Ipv4Address(10, 0, 0, 9));
}

TEST(ConfParser, Errors) {
  EXPECT_THROW(parse_config("Bogus = 1\n"), ConfigError);
  EXPECT_THROW(parse_config("Mature = fast\n"), ConfigError);
  EXPECT_THROW(parse_config("Mature = 5\n"), ConfigError);  // unit required
  EXPECT_THROW(parse_config("RepresentativeDriven = maybe\n"), ConfigError);
  EXPECT_THROW(parse_config("VirtualInterfaces {\n{ eth0: 10.0.0.1 }\n}\n"),
               ConfigError);
  EXPECT_THROW(parse_config("VirtualInterfaces {\n{ if0: 999.0.0.1 }\n}\n"),
               ConfigError);
  EXPECT_THROW(parse_config("VirtualInterfaces {\n{ }\n}\n"), ConfigError);
  EXPECT_THROW(parse_config("VirtualInterfaces {\n{ if0: 10.0.0.1 }\n"),
               ConfigError);  // unterminated
  // Duplicate address across groups -> validation failure.
  EXPECT_THROW(parse_config("VirtualInterfaces {\n{ if0: 10.0.0.1 }\n"
                            "{ if0: 10.0.0.1 }\n}\n"),
               ConfigError);
  // Preference naming an unknown group.
  EXPECT_THROW(parse_config("Prefer = nope\nVirtualInterfaces {\n"
                            "{ if0: 10.0.0.1 }\n}\n"),
               ConfigError);
}

TEST(ConfParser, CommentsEverywhere) {
  auto c = parse_config(
      "# header\nGroup = g # trailing\nVirtualInterfaces { # open\n"
      "{ if0: 10.0.0.1 } # entry\n} # close\n");
  EXPECT_EQ(c.group, "g");
  EXPECT_EQ(c.vip_groups.size(), 1u);
}

TEST(ConfParser, RenderRoundTrips) {
  auto c1 = parse_config(kFull);
  auto text = render_config(c1);
  auto c2 = parse_config(text);
  EXPECT_EQ(c2.group, c1.group);
  EXPECT_EQ(c2.maturity_timeout, c1.maturity_timeout);
  EXPECT_EQ(c2.balance_timeout, c1.balance_timeout);
  EXPECT_EQ(c2.representative_driven, c1.representative_driven);
  EXPECT_EQ(c2.preferred, c1.preferred);
  ASSERT_EQ(c2.vip_groups.size(), c1.vip_groups.size());
  for (std::size_t i = 0; i < c1.vip_groups.size(); ++i) {
    EXPECT_EQ(c2.vip_groups[i].name, c1.vip_groups[i].name);
    EXPECT_EQ(c2.vip_groups[i].addresses, c1.vip_groups[i].addresses);
  }
}

}  // namespace
}  // namespace wam::wackamole
