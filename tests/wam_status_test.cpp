// Status snapshot / rendering paths of the control module, plus the small
// display helpers scattered across the public types.
#include <gtest/gtest.h>

#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

TEST(WamStatus, SnapshotReflectsDaemonState) {
  WamCluster c(2, test_config(4));
  c.start_wam();
  c.run(sim::seconds(5.0));
  auto s = wackamole::snapshot(*c.wams[0]);
  EXPECT_EQ(s.state, wackamole::WamState::kRun);
  EXPECT_TRUE(s.mature);
  EXPECT_TRUE(s.connected);
  EXPECT_TRUE(s.representative);
  EXPECT_EQ(s.table.size(), 4u);
  EXPECT_FALSE(s.view.empty());
  auto s1 = wackamole::snapshot(*c.wams[1]);
  EXPECT_FALSE(s1.representative);
}

TEST(WamStatus, RenderShowsEverySection) {
  WamCluster c(1, test_config(2));
  c.start_wam();
  c.run(sim::seconds(5.0));
  auto text = wackamole::render_status(wackamole::snapshot(*c.wams[0]));
  for (const char* needle :
       {"state: RUN", "(mature)", "[representative]", "view:", "owned:",
        "table:", "counters:"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(WamStatus, IdleDaemonRenders) {
  WamCluster c(1, test_config(2));
  // Not started: IDLE, disconnected, empty table.
  auto text = wackamole::render_status(wackamole::snapshot(*c.wams[0]));
  EXPECT_NE(text.find("state: IDLE"), std::string::npos);
  EXPECT_NE(text.find("[disconnected]"), std::string::npos);
  EXPECT_NE(text.find("(none)"), std::string::npos);
  EXPECT_NE(text.find("(empty)"), std::string::npos);
}

TEST(WamStatus, StateNames) {
  EXPECT_STREQ(wackamole::wam_state_name(wackamole::WamState::kIdle), "IDLE");
  EXPECT_STREQ(wackamole::wam_state_name(wackamole::WamState::kRun), "RUN");
  EXPECT_STREQ(wackamole::wam_state_name(wackamole::WamState::kGather),
               "GATHER");
}

TEST(WamStatus, GroupViewHelpers) {
  gcs::GroupView gv;
  gv.group = "g";
  gv.daemon_view = gcs::ViewId{2, gcs::DaemonId(net::Ipv4Address(10, 0, 0, 1))};
  gv.group_seq = 5;
  gcs::MemberId m{gcs::DaemonId(net::Ipv4Address(10, 0, 0, 1)), 1, "w"};
  gv.members = {m};
  EXPECT_TRUE(gv.contains(m));
  EXPECT_EQ(gv.rank_of(m), 0);
  gcs::MemberId other{gcs::DaemonId(net::Ipv4Address(10, 0, 0, 2)), 1, "w"};
  EXPECT_FALSE(gv.contains(other));
  EXPECT_EQ(gv.rank_of(other), -1);
  EXPECT_NE(gv.to_string().find("g v5"), std::string::npos);
}

TEST(WamStatus, ViewToString) {
  gcs::View v{gcs::ViewId{3, gcs::DaemonId(net::Ipv4Address(10, 0, 0, 1))},
              {gcs::DaemonId(net::Ipv4Address(10, 0, 0, 1)),
               gcs::DaemonId(net::Ipv4Address(10, 0, 0, 2))}};
  auto text = v.to_string();
  EXPECT_NE(text.find("3@10.0.0.1"), std::string::npos);
  EXPECT_NE(text.find("10.0.0.2"), std::string::npos);
}

// Wackamole over the multicast transport: the algorithm is transport-
// agnostic.
TEST(WamStatus, FullStackOverMulticastTransport) {
  WamCluster c(3, test_config(6),
               gcs::Config::spread_tuned().with_multicast());
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.expect_correctness({0, 1, 2}, "multicast transport");
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(6.0));
  c.expect_correctness({0, 1}, "multicast transport fault");
}

}  // namespace
}  // namespace wam::testing
