#include "gcs/conf_parser.hpp"

#include <gtest/gtest.h>

namespace wam::gcs {
namespace {

TEST(GcsConfParser, FullConfig) {
  auto c = parse_config(
      "# tuned ring over multicast\n"
      "Port = 5100\n"
      "Multicast = 239.192.0.9\n"
      "Ordering = ring\n"
      "FaultDetection = 1s\n"
      "Heartbeat = 0.4s\n"
      "Discovery = 1.4s\n"
      "TokenHold = 2ms\n"
      "TokenRetry = 50ms\n"
      "TokenWindow = 32\n");
  EXPECT_EQ(c.port, 5100);
  EXPECT_EQ(c.multicast_group, net::Ipv4Address(239, 192, 0, 9));
  EXPECT_EQ(c.ordering, OrderingEngine::kTokenRing);
  EXPECT_EQ(sim::to_seconds(c.fault_detection_timeout), 1.0);
  EXPECT_EQ(sim::to_seconds(c.heartbeat_timeout), 0.4);
  EXPECT_EQ(sim::to_seconds(c.discovery_timeout), 1.4);
  EXPECT_EQ(sim::to_millis(c.token_hold), 2.0);
  EXPECT_EQ(c.token_window, 32);
}

TEST(GcsConfParser, DefaultsAreSpreadDefaults) {
  auto c = parse_config("");
  EXPECT_EQ(sim::to_seconds(c.fault_detection_timeout), 5.0);
  EXPECT_EQ(sim::to_seconds(c.heartbeat_timeout), 2.0);
  EXPECT_EQ(sim::to_seconds(c.discovery_timeout), 7.0);
  EXPECT_EQ(c.ordering, OrderingEngine::kSequencer);
  EXPECT_TRUE(c.multicast_group.is_any());
}

TEST(GcsConfParser, Errors) {
  EXPECT_THROW(parse_config("Bogus = 1\n"), ConfigError);
  EXPECT_THROW(parse_config("Port = 0\n"), ConfigError);
  EXPECT_THROW(parse_config("Port = 99999\n"), ConfigError);
  EXPECT_THROW(parse_config("Multicast = 10.0.0.1\n"), ConfigError);
  EXPECT_THROW(parse_config("Ordering = sideways\n"), ConfigError);
  EXPECT_THROW(parse_config("Heartbeat = fast\n"), ConfigError);
  EXPECT_THROW(parse_config("Heartbeat = 5\n"), ConfigError);
  // Validation: fault detection must exceed the heartbeat.
  EXPECT_THROW(parse_config("FaultDetection = 1s\nHeartbeat = 2s\n"),
               ConfigError);
}

TEST(GcsConfParser, RenderRoundTrips) {
  auto c1 = parse_config(
      "Multicast = 239.1.1.1\nOrdering = ring\nFaultDetection = 2s\n"
      "Heartbeat = 0.5s\nDiscovery = 3s\n");
  auto c2 = parse_config(render_config(c1));
  EXPECT_EQ(c2.multicast_group, c1.multicast_group);
  EXPECT_EQ(c2.ordering, c1.ordering);
  EXPECT_EQ(c2.fault_detection_timeout, c1.fault_detection_timeout);
  EXPECT_EQ(c2.heartbeat_timeout, c1.heartbeat_timeout);
  EXPECT_EQ(c2.discovery_timeout, c1.discovery_timeout);
  EXPECT_EQ(c2.token_window, c1.token_window);
}

TEST(GcsConfParser, CaseInsensitiveKeys) {
  auto c = parse_config("HEARTBEAT = 1s\nfaultdetection = 3s\n");
  EXPECT_EQ(sim::to_seconds(c.heartbeat_timeout), 1.0);
  EXPECT_EQ(sim::to_seconds(c.fault_detection_timeout), 3.0);
}

}  // namespace
}  // namespace wam::gcs
