// Asymmetric (one-way) link faults: the failure mode §2 of the paper
// flags as the correctness caveat — "if there is additional connectivity
// beyond that reported by the group communication system, there may be
// conflicts in the assignment of IP addresses."
//
// These tests pin down how this implementation actually behaves: the
// fault detector on the starved side fires, a reconfiguration runs, and
// because discovery floods are also one-way-blocked the system settles
// into views consistent with the REACHABILITY EACH SIDE OBSERVES. The
// documented caveat shows up exactly as the paper predicts: while the
// asymmetry persists, coverage can be duplicated from the point of view
// of a third party that hears both sides. Symmetric healing restores
// exactly-once.
#include <gtest/gtest.h>

#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

TEST(AsymmetricFault, FabricDropsOnlyOneDirection) {
  GcsCluster c(2);
  int got_a = 0, got_b = 0;
  c.hosts[0]->open_udp(9, [&](const net::Host::UdpContext&,
                              const util::Bytes&) { ++got_a; });
  c.hosts[1]->open_udp(9, [&](const net::Host::UdpContext&,
                              const util::Bytes&) { ++got_b; });
  // Resolve ARP both ways first.
  c.hosts[0]->send_udp(c.hosts[1]->primary_ip(0), 9, 9, {1});
  c.hosts[1]->send_udp(c.hosts[0]->primary_ip(0), 9, 9, {1});
  c.sched.run_all();
  ASSERT_EQ(got_a, 1);
  ASSERT_EQ(got_b, 1);

  c.fabric.block_direction(c.hosts[0]->nic_id(0), c.hosts[1]->nic_id(0));
  c.hosts[0]->send_udp(c.hosts[1]->primary_ip(0), 9, 9, {2});  // blocked
  c.hosts[1]->send_udp(c.hosts[0]->primary_ip(0), 9, 9, {2});  // fine
  c.sched.run_all();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_a, 2);
  EXPECT_GE(c.fabric.counters().dropped_directional, 1u);

  c.fabric.unblock_direction(c.hosts[0]->nic_id(0), c.hosts[1]->nic_id(0));
  c.hosts[0]->send_udp(c.hosts[1]->primary_ip(0), 9, 9, {3});
  c.sched.run_all();
  EXPECT_EQ(got_b, 2);
}

TEST(AsymmetricFault, StarvedSideDetectsAndReconfigures) {
  GcsCluster c(2);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1}}, "before asymmetry");

  // Host 1 can no longer hear host 0 (but 0 still hears 1).
  c.fabric.block_direction(c.hosts[0]->nic_id(0), c.hosts[1]->nic_id(0));
  c.run(sim::seconds(15.0));
  // The starved daemon must not stay in a stale two-member OP view
  // believing its peer is alive.
  const auto& starved = *c.daemons[1];
  if (starved.in_op()) {
    EXPECT_EQ(starved.view().members.size(), 1u)
        << "starved daemon still believes in the unreachable peer";
  }

  // Symmetric healing: both directions work again; full view reforms.
  c.fabric.clear_directional_blocks();
  c.run(sim::seconds(10.0));
  c.expect_views({{0, 1}}, "after healing");
}

TEST(AsymmetricFault, WackamoleCoverageRestoredAfterHealing) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.wams[0]->trigger_balance();
  c.run(sim::seconds(1.0));
  c.expect_correctness({0, 1, 2}, "before");

  // One-way starve host 2 from host 0's traffic.
  c.fabric.block_direction(c.hosts[0]->nic_id(0), c.hosts[2]->nic_id(0));
  c.run(sim::seconds(20.0));
  // The paper's caveat: during asymmetric connectivity, per-component
  // exactly-once may not be observable globally; what MUST hold is that
  // every VIP is covered at least once somewhere (no global hole).
  for (const auto& name : c.wams[0]->config().group_names()) {
    EXPECT_GE(c.holders(name, {0, 1, 2}), 1)
        << name << " has a global hole under asymmetry";
  }

  c.fabric.clear_directional_blocks();
  c.run(sim::seconds(15.0));
  c.expect_correctness({0, 1, 2}, "after healing");
}

}  // namespace
}  // namespace wam::testing
