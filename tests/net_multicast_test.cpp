#include <gtest/gtest.h>

#include <memory>

#include "net/host.hpp"
#include "util/assert.hpp"

namespace wam::net {
namespace {

const Ipv4Address kGroup(239, 1, 2, 3);

struct MulticastTest : ::testing::Test {
  sim::Scheduler sched;
  Fabric fabric{sched};
  SegmentId seg = fabric.add_segment();

  std::unique_ptr<Host> make_host(const std::string& name, int octet) {
    auto h = std::make_unique<Host>(sched, fabric, name);
    h->add_interface(
        seg, Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(octet)), 24);
    return h;
  }
};

TEST(MulticastAddress, ClassDDetection) {
  EXPECT_TRUE(Ipv4Address(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Address(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Address(223, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Address(240, 0, 0, 0).is_multicast());
  EXPECT_FALSE(Ipv4Address(10, 0, 0, 1).is_multicast());
}

TEST(MulticastAddress, MacMapping) {
  // 239.1.2.3 -> 01:00:5e:01:02:03 (low 23 bits).
  auto mac = MacAddress::multicast_for(kGroup);
  EXPECT_EQ(mac.to_string(), "01:00:5e:01:02:03");
  EXPECT_TRUE(mac.is_group());
  EXPECT_FALSE(mac.is_broadcast());
  // 239.129.2.3: bit 23 of the group is dropped by the mapping.
  EXPECT_EQ(MacAddress::multicast_for(Ipv4Address(239, 129, 2, 3)),
            MacAddress::multicast_for(Ipv4Address(239, 1, 2, 3)));
}

TEST(MulticastAddress, GroupBit) {
  EXPECT_TRUE(MacAddress::broadcast().is_group());
  EXPECT_FALSE(MacAddress::from_index(3).is_group());
}

TEST_F(MulticastTest, OnlyMembersReceive) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  auto c = make_host("c", 3);
  int got_b = 0, got_c = 0;
  b->open_udp(7000, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got_b;
  });
  c->open_udp(7000, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got_c;
  });
  b->join_multicast(0, kGroup);
  // c has the socket but did NOT join: it must see nothing (the broadcast
  // transport would have delivered here — this is multicast's point).
  a->send_udp_multicast(0, kGroup, 7000, 7000, {1});
  sched.run_all();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 0);
}

TEST_F(MulticastTest, SenderLoopbackOnlyWhenJoined) {
  auto a = make_host("a", 1);
  int got = 0;
  a->open_udp(7000, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got;
  });
  a->send_udp_multicast(0, kGroup, 7000, 7000, {1});
  sched.run_all();
  EXPECT_EQ(got, 0);
  a->join_multicast(0, kGroup);
  a->send_udp_multicast(0, kGroup, 7000, 7000, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(MulticastTest, LeaveStopsDelivery) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  int got = 0;
  b->open_udp(7000, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got;
  });
  b->join_multicast(0, kGroup);
  a->send_udp_multicast(0, kGroup, 7000, 7000, {1});
  sched.run_all();
  EXPECT_EQ(got, 1);
  b->leave_multicast(0, kGroup);
  a->send_udp_multicast(0, kGroup, 7000, 7000, {2});
  sched.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(MulticastTest, PartitionConfinesMulticast) {
  auto a = make_host("a", 1);
  auto b = make_host("b", 2);
  int got = 0;
  b->open_udp(7000, [&](const Host::UdpContext&, const util::Bytes&) {
    ++got;
  });
  b->join_multicast(0, kGroup);
  fabric.set_partition(seg, {{a->nic_id(0)}, {b->nic_id(0)}});
  a->send_udp_multicast(0, kGroup, 7000, 7000, {1});
  sched.run_all();
  EXPECT_EQ(got, 0);
}

TEST_F(MulticastTest, RejectsNonMulticastGroup) {
  auto a = make_host("a", 1);
  EXPECT_THROW(a->join_multicast(0, Ipv4Address(10, 0, 0, 99)),
               util::ContractViolation);
  EXPECT_THROW(a->send_udp_multicast(0, Ipv4Address(10, 0, 0, 99), 7, 7, {1}),
               util::ContractViolation);
}

}  // namespace
}  // namespace wam::net
