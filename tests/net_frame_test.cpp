#include "net/frame.hpp"

#include <gtest/gtest.h>

namespace wam::net {
namespace {

TEST(ArpPacket, RoundTrip) {
  ArpPacket p;
  p.op = ArpOp::kReply;
  p.sender_mac = MacAddress::from_index(3);
  p.sender_ip = Ipv4Address(10, 0, 0, 3);
  p.target_mac = MacAddress::from_index(7);
  p.target_ip = Ipv4Address(10, 0, 0, 7);

  auto decoded = ArpPacket::decode(p.encode());
  EXPECT_EQ(decoded.op, ArpOp::kReply);
  EXPECT_EQ(decoded.sender_mac, p.sender_mac);
  EXPECT_EQ(decoded.sender_ip, p.sender_ip);
  EXPECT_EQ(decoded.target_mac, p.target_mac);
  EXPECT_EQ(decoded.target_ip, p.target_ip);
}

TEST(ArpPacket, GratuitousDetection) {
  ArpPacket p;
  p.sender_ip = Ipv4Address(10, 0, 0, 3);
  p.target_ip = Ipv4Address(10, 0, 0, 3);
  EXPECT_TRUE(p.is_gratuitous());
  p.target_ip = Ipv4Address(10, 0, 0, 4);
  EXPECT_FALSE(p.is_gratuitous());
}

TEST(ArpPacket, DecodeRejectsBadOp) {
  ArpPacket p;
  auto bytes = p.encode();
  bytes[1] = 9;  // op low byte
  EXPECT_THROW(ArpPacket::decode(bytes), util::DecodeError);
}

TEST(ArpPacket, DecodeRejectsTruncation) {
  ArpPacket p;
  auto bytes = p.encode();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(ArpPacket::decode(bytes), util::DecodeError);
}

TEST(ArpPacket, DescribeMentionsOperation) {
  ArpPacket req;
  req.op = ArpOp::kRequest;
  req.sender_ip = Ipv4Address(10, 0, 0, 1);
  req.target_ip = Ipv4Address(10, 0, 0, 2);
  EXPECT_NE(req.describe().find("who-has 10.0.0.2"), std::string::npos);

  ArpPacket rep;
  rep.op = ArpOp::kReply;
  rep.sender_ip = Ipv4Address(10, 0, 0, 2);
  rep.target_ip = Ipv4Address(10, 0, 0, 2);
  EXPECT_NE(rep.describe().find("is-at"), std::string::npos);
  EXPECT_NE(rep.describe().find("gratuitous"), std::string::npos);
}

TEST(Ipv4Packet, RoundTrip) {
  Ipv4Packet p;
  p.src = Ipv4Address(10, 0, 0, 1);
  p.dst = Ipv4Address(10, 0, 0, 2);
  p.ttl = 7;
  p.payload = {1, 2, 3, 4};
  auto decoded = Ipv4Packet::decode(p.encode());
  EXPECT_EQ(decoded.src, p.src);
  EXPECT_EQ(decoded.dst, p.dst);
  EXPECT_EQ(decoded.ttl, 7);
  EXPECT_EQ(decoded.protocol, kProtoUdp);
  EXPECT_EQ(decoded.payload, p.payload);
}

TEST(UdpDatagram, RoundTrip) {
  UdpDatagram d{4803, 9999, {0xaa, 0xbb}};
  auto decoded = UdpDatagram::decode(d.encode());
  EXPECT_EQ(decoded.src_port, 4803);
  EXPECT_EQ(decoded.dst_port, 9999);
  EXPECT_EQ(decoded.payload, d.payload);
}

TEST(UdpDatagram, NestedInIpv4) {
  UdpDatagram d{1, 2, {9}};
  Ipv4Packet p;
  p.payload = d.encode();
  auto decoded = UdpDatagram::decode(Ipv4Packet::decode(p.encode()).payload);
  EXPECT_EQ(decoded.payload, d.payload);
}

TEST(Frame, DescribeShowsType) {
  Frame f{MacAddress::from_index(1), MacAddress::broadcast(), EtherType::kArp,
          {}};
  EXPECT_NE(f.describe().find("ARP"), std::string::npos);
}

}  // namespace
}  // namespace wam::net
