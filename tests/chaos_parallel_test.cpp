// Pins the ParallelRunner determinism contract: fanning pinned seeds out
// over worker threads yields results byte-identical to a sequential run —
// same verdicts, same schedules, same timeline artifacts, in seed order.
// Each seed builds its own Scheduler/Fabric universe, so the only thing
// threads share is the results vector (one slot per job).
#include "chaos/parallel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wam::chaos {
namespace {

// Small schedules keep the test fast; determinism does not depend on size.
CampaignOptions small_options() {
  CampaignOptions opt;
  opt.generator.rounds = 2;
  opt.generator.num_servers = 3;
  opt.generator.num_vips = 3;
  opt.shrink = false;
  return opt;
}

std::vector<SeedJob> pinned_jobs() {
  std::vector<SeedJob> work;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    work.push_back({seed, Profile::kCluster, small_options()});
    work.push_back({seed, Profile::kRouter, small_options()});
  }
  return work;
}

TEST(ParallelRunner, FourJobsMatchSequentialByteForByte) {
  auto work = pinned_jobs();
  auto sequential = ParallelRunner(1).run(work);
  auto parallel = ParallelRunner(4).run(work);

  ASSERT_EQ(sequential.size(), work.size());
  ASSERT_EQ(parallel.size(), work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(parallel[i].seed, sequential[i].seed);
    EXPECT_EQ(parallel[i].profile, sequential[i].profile);
    EXPECT_EQ(parallel[i].passed(), sequential[i].passed());
    EXPECT_EQ(parallel[i].violations.size(), sequential[i].violations.size());
    // The replay artifacts are the strong check: the DSL rendering and the
    // observability timeline are full transcripts of the simulated run.
    EXPECT_EQ(parallel[i].dsl, sequential[i].dsl);
    EXPECT_EQ(parallel[i].timeline_json, sequential[i].timeline_json);
  }
}

TEST(ParallelRunner, MoreJobsThanWorkIsFine) {
  std::vector<SeedJob> work{{7, Profile::kCluster, small_options()}};
  auto results = ParallelRunner(8).run(work);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].seed, 7u);
}

TEST(ParallelRunner, EmptyWorkReturnsEmpty) {
  EXPECT_TRUE(ParallelRunner(4).run({}).empty());
}

TEST(ParallelRunner, RepeatedParallelRunsAreStable) {
  std::vector<SeedJob> work{{3, Profile::kCluster, small_options()},
                            {4, Profile::kRouter, small_options()}};
  auto first = ParallelRunner(2).run(work);
  auto second = ParallelRunner(2).run(work);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].timeline_json, second[i].timeline_json);
    EXPECT_EQ(first[i].dsl, second[i].dsl);
  }
}

}  // namespace
}  // namespace wam::chaos
