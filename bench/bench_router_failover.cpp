// Figure 4 — virtual-router fail-over time.
//
// N physical routers form one virtual router (an indivisible VIP group on
// three networks). An external client's traffic flows through it to a web
// server; we crash the active physical router and measure the
// client-perceived interruption, for both Table 1 configurations, plus the
// graceful hand-off (administrative removal of the active router).
#include <cstdio>

#include "apps/router_scenario.hpp"
#include "sim/stats.hpp"

#include "bench_common.hpp"

using namespace wam;

namespace {

double failover_trial(const gcs::Config& config, int trial, bool graceful,
                      sim::Duration routing_delay = sim::kZero) {
  apps::RouterScenarioOptions opt;
  opt.gcs = config;
  opt.seed = static_cast<std::uint64_t>(trial + 1);
  opt.routing_convergence_delay = routing_delay;
  apps::RouterScenario s(opt);
  s.start();
  s.run(config.discovery_timeout * 4 + sim::seconds(5.0) + routing_delay);
  if (s.active_router() < 0) return -1.0;
  s.start_probe();
  s.run(sim::milliseconds(1000 + 73 * trial));
  int active = s.active_router();
  if (active < 0) return -1.0;
  if (graceful) {
    s.graceful_leave(active);
  } else {
    s.fail_router(active);
  }
  s.run(sim::seconds(30.0) + routing_delay);
  // Whole-group invariant must hold afterwards.
  int heir = s.active_router();
  if (heir < 0 || !s.holds_whole_group(heir)) return -1.0;
  return sim::to_seconds(s.probe().longest_gap());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 4: virtual-router fail-over (indivisible VIP group, 3 nets)",
      "crash fail-over dominated by GCS timeouts; graceful hand-off ~ms; "
      "no routing-table transfer needed in the all-routers-advertise setup");

  struct Row {
    const char* label;
    gcs::Config config;
    bool graceful;
  };
  Row rows[] = {
      {"crash, default-spread", gcs::Config::spread_default(), false},
      {"crash, tuned-spread", gcs::Config::spread_tuned(), false},
      {"graceful, tuned-spread", gcs::Config::spread_tuned(), true},
  };
  for (const auto& row : rows) {
    sim::Stats stats;
    for (int trial = 0; trial < 5; ++trial) {
      double secs = failover_trial(row.config, trial, row.graceful);
      if (secs >= 0) stats.add(secs);
    }
    bench::print_row(row.label, stats, "s");
  }

  // §5.2's deployment comparison: the naive setup pays dynamic-routing
  // reconvergence (~30 s) on top of the Wackamole hand-off; the
  // all-routers-advertise setup does not.
  std::printf("\ndeployment comparison (tuned config, crash fail-over):\n");
  {
    sim::Stats advertise, naive;
    for (int trial = 0; trial < 3; ++trial) {
      double a = failover_trial(gcs::Config::spread_tuned(), trial, false);
      if (a >= 0) advertise.add(a);
      double n = failover_trial(gcs::Config::spread_tuned(), trial, false,
                                sim::seconds(30.0));
      if (n >= 0) naive.add(n);
    }
    bench::print_row("all-routers-advertise", advertise, "s");
    bench::print_row("naive (30 s OSPF/RIP)", naive, "s");
  }
  std::printf(
      "\nNote: in the paper's alternate setup all fail-over routers run the\n"
      "dynamic routing protocol continuously, so hand-off completes as soon\n"
      "as Wackamole reconfigures — no ~30 s OSPF/RIP reconvergence. Our\n"
      "routers hold connected routes only, which models that setup.\n");
  return 0;
}
