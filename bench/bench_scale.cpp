// Scale sweep (extension): reconfiguration cost vs cluster and VIP-set
// size, beyond the paper's 12-server ceiling.
//
// Reports, per configuration: the fail-over interruption (should stay flat
// — timeout-dominated, Figure 5's message), the number of GCS messages the
// reconfiguration cost (sequenced data + views installed), and the
// wall-clock time the whole simulated scenario took — the row the
// protocol fast path exists for, dominated by placement + wire codec work
// once the sweep reaches 64 servers x 4096 VIPs.
//
// With --json FILE, also writes the wall-clock rows as google-benchmark
// style JSON (name BM_ScaleFailover/<servers>/<vips>, real_time in ms) so
// tools/check_bench.py can gate regressions against
// bench/BENCH_scale.baseline.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace wam;

namespace {

struct Row {
  int servers;
  int vips;
  double wall_ms;
};

void write_json(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"BM_ScaleFailover/%d/%d\", "
                 "\"run_type\": \"iteration\", \"iterations\": 1, "
                 "\"real_time\": %.3f, \"cpu_time\": %.3f, "
                 "\"time_unit\": \"ms\"}%s\n",
                 rows[i].servers, rows[i].vips, rows[i].wall_ms,
                 rows[i].wall_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  bench::print_header(
      "Scale sweep: servers x VIPs vs interruption and protocol cost",
      "interruption stays timeout-dominated (flat); protocol cost grows "
      "with cluster size");

  std::vector<Row> rows;
  std::printf("\n  %-9s %-7s %-16s %-18s %-16s %-12s\n", "servers", "vips",
              "interruption (s)", "msgs sequenced", "views installed",
              "wall (ms)");
  auto sweep = [&](int servers, int vips) {
    apps::ClusterOptions opt;
    opt.num_servers = servers;
    opt.num_vips = vips;
    opt.gcs = gcs::Config::spread_tuned();
    auto wall_start = std::chrono::steady_clock::now();
    apps::ClusterScenario s(opt);
    s.start();
    if (!s.run_until_stable(sim::seconds(120.0))) {
      std::printf("  %-9d %-7d DID NOT CONVERGE\n", servers, vips);
      return;
    }
    s.wam(0).trigger_balance();
    s.run(sim::seconds(1.0));
    s.start_probe(0);
    s.run(sim::seconds(1.0));
    int victim = s.owner_of(0);
    s.disconnect_server(victim);
    s.run(sim::seconds(10.0));
    auto wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
    auto gaps = s.probe().interruptions();
    double interruption =
        gaps.empty() ? -1.0 : sim::to_seconds(gaps.front().length());

    std::uint64_t sequenced = s.obs.registry.sum("gcs/*/data_sequenced");
    std::uint64_t views = s.obs.registry.sum("gcs/*/views_installed");
    std::printf("  %-9d %-7d %-16.2f %-18llu %-16llu %-12.1f\n", servers,
                vips, interruption, static_cast<unsigned long long>(sequenced),
                static_cast<unsigned long long>(views), wall_ms);
    rows.push_back(Row{servers, vips, wall_ms});
  };

  for (int servers : {4, 8, 16, 24, 32}) {
    for (int vips : {10, 50}) sweep(servers, vips);
  }
  // The production-scale regime of the protocol fast path: one cluster
  // size, VIP counts swept past the placement and wire hot paths.
  for (int vips : {256, 1024, 4096}) sweep(64, vips);

  if (json_path != nullptr) write_json(json_path, rows);
  return 0;
}
