// Scale sweep (extension): reconfiguration cost vs cluster and VIP-set
// size, beyond the paper's 12-server ceiling.
//
// Reports, per configuration: the fail-over interruption (should stay flat
// — timeout-dominated, Figure 5's message), the wall-clock-free virtual
// time to initially converge, and the number of GCS messages the
// reconfiguration cost (sequenced data + views installed).
#include <cstdio>

#include "bench_common.hpp"

using namespace wam;

int main() {
  bench::print_header(
      "Scale sweep: servers x VIPs vs interruption and protocol cost",
      "interruption stays timeout-dominated (flat); protocol cost grows "
      "with cluster size");

  std::printf("\n  %-9s %-7s %-16s %-18s %-16s\n", "servers", "vips",
              "interruption (s)", "msgs sequenced", "views installed");
  for (int servers : {4, 8, 16, 24, 32}) {
    for (int vips : {10, 50}) {
      apps::ClusterOptions opt;
      opt.num_servers = servers;
      opt.num_vips = vips;
      opt.gcs = gcs::Config::spread_tuned();
      apps::ClusterScenario s(opt);
      s.start();
      if (!s.run_until_stable(sim::seconds(60.0))) {
        std::printf("  %-9d %-7d DID NOT CONVERGE\n", servers, vips);
        continue;
      }
      s.wam(0).trigger_balance();
      s.run(sim::seconds(1.0));
      s.start_probe(0);
      s.run(sim::seconds(1.0));
      int victim = s.owner_of(0);
      s.disconnect_server(victim);
      s.run(sim::seconds(10.0));
      auto gaps = s.probe().interruptions();
      double interruption =
          gaps.empty() ? -1.0 : sim::to_seconds(gaps.front().length());

      std::uint64_t sequenced = s.obs.registry.sum("gcs/*/data_sequenced");
      std::uint64_t views = s.obs.registry.sum("gcs/*/views_installed");
      std::printf("  %-9d %-7d %-16.2f %-18llu %-16llu\n", servers, vips,
                  interruption, static_cast<unsigned long long>(sequenced),
                  static_cast<unsigned long long>(views));
    }
  }
  return 0;
}
