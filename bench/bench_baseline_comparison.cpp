// Related-work comparison (Section 7) — fail-over time by protocol.
//
// The same fault (the VIP owner's interface disconnects) measured with the
// same probing client (10 ms interval) across:
//   * Wackamole (tuned + default Table 1 configurations),
//   * VRRP (1 s advertisements, master-down = 3*advert + skew),
//   * HSRP (3 s hellos, 10 s hold time — the defaults the paper quotes),
//   * Linux Fake (1 s service probes, 4 misses to take over).
//
// The paper's argument: Wackamole matches or beats the dedicated pairwise
// protocols while additionally providing N-way coverage, balanced
// allocation, and safe partition/merge semantics that none of them have.
#include <cstdio>
#include <memory>

#include "apps/echo.hpp"
#include "apps/probe_client.hpp"
#include "baselines/fake.hpp"
#include "baselines/hsrp.hpp"
#include "baselines/vrrp.hpp"
#include "sim/stats.hpp"

#include "bench_common.hpp"

using namespace wam;

namespace {

struct Lan {
  sim::Scheduler sched;
  sim::Log log{sched};
  net::Fabric fabric{sched, &log};
  net::SegmentId seg = fabric.add_segment();
  std::unique_ptr<net::Host> a, b, client;
  std::unique_ptr<apps::EchoServer> echo_a, echo_b;
  std::unique_ptr<apps::ProbeClient> probe;
  net::Ipv4Address vip{10, 0, 0, 100};

  Lan() {
    a = std::make_unique<net::Host>(sched, fabric, "primary", &log);
    a->add_interface(seg, net::Ipv4Address(10, 0, 0, 1), 24);
    b = std::make_unique<net::Host>(sched, fabric, "backup", &log);
    b->add_interface(seg, net::Ipv4Address(10, 0, 0, 2), 24);
    client = std::make_unique<net::Host>(sched, fabric, "client", &log);
    client->add_interface(seg, net::Ipv4Address(10, 0, 0, 50), 24);
    echo_a = std::make_unique<apps::EchoServer>(*a);
    echo_b = std::make_unique<apps::EchoServer>(*b);
    echo_a->start();
    echo_b->start();
  }

  double measure(sim::Duration settle, sim::Duration phase,
                 sim::Duration after) {
    probe = std::make_unique<apps::ProbeClient>(*client, vip);
    sched.run_for(settle);
    probe->start();
    sched.run_for(sim::seconds(1.0) + phase);
    a->fail();
    sched.run_for(after);
    auto gaps = probe->interruptions();
    if (gaps.empty()) return -1.0;
    return sim::to_seconds(gaps.back().length());
  }
};

double vrrp_trial(int trial) {
  Lan lan;
  baselines::VrrpRouter ra(
      *lan.a, baselines::VrrpConfig{1, {lan.vip}, 0, 200,
                                    sim::seconds(1.0), true, 112});
  baselines::VrrpRouter rb(
      *lan.b, baselines::VrrpConfig{1, {lan.vip}, 0, 100,
                                    sim::seconds(1.0), true, 112});
  ra.start();
  rb.start();
  return lan.measure(sim::seconds(8.0), sim::milliseconds(137 * trial),
                     sim::seconds(20.0));
}

double hsrp_trial(int trial) {
  Lan lan;
  baselines::HsrpRouter ra(
      *lan.a, baselines::HsrpConfig{1, {lan.vip}, 0, 200, sim::seconds(3.0),
                                    sim::seconds(10.0), 1985});
  baselines::HsrpRouter rb(
      *lan.b, baselines::HsrpConfig{1, {lan.vip}, 0, 100, sim::seconds(3.0),
                                    sim::seconds(10.0), 1985});
  ra.start();
  rb.start();
  return lan.measure(sim::seconds(40.0), sim::milliseconds(557 * trial),
                     sim::seconds(30.0));
}

double fake_trial(int trial) {
  Lan lan;
  lan.a->add_alias(0, lan.vip);
  baselines::FakeResponder responder(*lan.a);
  responder.start();
  baselines::FakeConfig cfg;
  cfg.main_ip = net::Ipv4Address(10, 0, 0, 1);
  cfg.vips = {lan.vip};
  baselines::FakeBackup fb(*lan.b, cfg);
  fb.start();
  return lan.measure(sim::seconds(5.0), sim::milliseconds(171 * trial),
                     sim::seconds(20.0));
}

double wackamole_trial(const gcs::Config& config, int trial) {
  apps::ClusterOptions opt;
  opt.num_servers = 2;
  opt.num_vips = 1;
  opt.gcs = config;
  opt.with_router = false;  // same-LAN client, like the baselines
  opt.seed = static_cast<std::uint64_t>(trial + 1);
  auto phase =
      sim::Duration(config.heartbeat_timeout.count() * (2 * trial + 1) / 10);
  return bench::interruption_trial(opt, phase);
}

}  // namespace

int main() {
  bench::print_header(
      "Baseline comparison: client-perceived fail-over time by protocol",
      "Wackamole tuned ~2-3 s; VRRP ~3-3.6 s; HSRP ~7-10 s; Fake ~4-5 s; "
      "Wackamole default ~10-12 s");

  struct Proto {
    const char* label;
    double (*fn)(int);
  };
  sim::Stats wam_tuned, wam_default;
  for (int t = 0; t < 5; ++t) {
    double v = wackamole_trial(gcs::Config::spread_tuned(), t);
    if (v >= 0) wam_tuned.add(v);
    v = wackamole_trial(gcs::Config::spread_default(), t);
    if (v >= 0) wam_default.add(v);
  }
  bench::print_row("wackamole (tuned)", wam_tuned, "s");
  bench::print_row("wackamole (default)", wam_default, "s");

  Proto protos[] = {
      {"vrrp (1s advert)", vrrp_trial},
      {"hsrp (3s/10s)", hsrp_trial},
      {"fake (1s probe x4)", fake_trial},
  };
  for (const auto& p : protos) {
    sim::Stats stats;
    for (int t = 0; t < 5; ++t) {
      double v = p.fn(t);
      if (v >= 0) stats.add(v);
    }
    bench::print_row(p.label, stats, "s");
  }

  std::printf(
      "\nCapability notes (not visible in raw latency):\n"
      "  - VRRP/HSRP/Fake protect ONE address set per instance "
      "(1:1/active-standby);\n"
      "    Wackamole provides N-way coverage of many VIPs with balancing.\n"
      "  - Only Wackamole guarantees conflict-free coverage across\n"
      "    partitions and merges (Property 1 per connected component).\n");
  return 0;
}
