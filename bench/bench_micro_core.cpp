// Google-benchmark microbenchmarks for the hot algorithm and substrate
// paths: the deterministic allocation procedures, wire codecs, ARP cache
// and end-to-end simulated packet delivery.
//
// The *Legacy benchmarks replicate the pre-fast-path implementations
// (shared_ptr-per-event scheduler, deep-copy-per-receiver broadcast) so a
// single binary emits honest before/after numbers. Run with no arguments
// it writes BENCH_micro_core.json (google-benchmark JSON) next to the
// binary; tools/check_bench.py compares such files across commits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "apps/echo.hpp"
#include "gcs/message.hpp"
#include "net/fabric.hpp"
#include "net/host.hpp"
#include "sim/scheduler.hpp"
#include "util/shared_bytes.hpp"
#include "wackamole/balance.hpp"
#include "wackamole/balance_legacy.hpp"
#include "wackamole/group_ids.hpp"
#include "wackamole/wire.hpp"

using namespace wam;

// Faithful replica of the event core this PR replaced: one shared_ptr
// control block per event, std::function callbacks (heap-allocating for
// captures beyond ~2 words), eager copies in the priority queue. Kept
// here, not in src/, purely as the "before" side of the measurement.
namespace legacy {

class Scheduler;

class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel() {
    if (state_) state_->cancelled = true;
  }

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit TimerHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  // noinline: the original implementation lived out-of-line in
  // scheduler.cpp, opaque to every caller; replicating that keeps the
  // before/after comparison honest now that the slab scheduler's hot
  // path is header-inline.
  __attribute__((noinline)) TimerHandle schedule(sim::Duration delay,
                                                 std::function<void()> fn) {
    auto when = now_ + (delay < sim::kZero ? sim::kZero : delay);
    auto state = std::make_shared<TimerHandle::State>();
    queue_.push(Event{when, next_seq_++, std::move(fn), state});
    return TimerHandle(state);
  }
  __attribute__((noinline)) bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (ev.state->cancelled) continue;
      now_ = ev.when;
      ev.state->fired = true;
      ev.fn();
      return true;
    }
    return false;
  }
  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    sim::TimePoint when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<TimerHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  sim::TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Pre-COW frame: the payload is a plain byte vector, deep-copied every
/// time the frame is.
struct Frame {
  net::MacAddress dst;
  net::MacAddress src;
  net::EtherType type = net::EtherType::kIpv4;
  util::Bytes payload;
};

/// Pre-fast-path STATE_MSG encoder: the wire v1 layout exactly as
/// encode_state() emitted it before the exact-capacity reserve, growing
/// the writer's buffer through vector reallocation as names append.
util::Bytes encode_state(const wam::wackamole::StateMsg& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(wam::wackamole::WamMsgType::kState));
  w.u64(m.view.epoch);
  w.u32(m.view.coordinator);
  w.u64(m.view.group_seq);
  w.boolean(m.mature);
  w.u32(m.weight);
  for (const auto* names : {&m.owned, &m.preferred, &m.quarantined}) {
    w.u32(static_cast<std::uint32_t>(names->size()));
    for (const auto& n : *names) w.str(n);
  }
  return w.take();
}

}  // namespace legacy

namespace {

gcs::MemberId member(int n) {
  return gcs::MemberId{
      gcs::DaemonId(net::Ipv4Address(10, 0, static_cast<std::uint8_t>(n / 250),
                                     static_cast<std::uint8_t>(n % 250 + 1))),
      1, "w"};
}

std::vector<std::string> make_groups(int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back("vip-" + std::to_string(1000 + i));
  }
  return out;
}

std::vector<wackamole::MemberInfo> make_members(int m) {
  std::vector<wackamole::MemberInfo> out;
  for (int i = 0; i < m; ++i) {
    out.push_back(wackamole::MemberInfo{member(i), true, 1, {}, {}});
  }
  return out;
}

// ---- Placement: the fast path vs the reference O(V*M) formulation ----
//
// The fast benchmarks measure the allocation procedures exactly as the
// daemon runs them: GroupSet and MemberStates are built once when the
// configuration / membership changes, and each round calls the dense
// *_fast procedure. The *Legacy twins run the verbatim pre-fast-path
// implementations (balance_legacy.cpp) on the same inputs; the
// equivalence suite proves both sides return identical decisions, so the
// ratio is a pure speed comparison.

void BM_ReallocateIps(benchmark::State& state) {
  auto groups = make_groups(static_cast<int>(state.range(0)));
  auto members = make_members(static_cast<int>(state.range(1)));
  wackamole::GroupSet set(groups);
  auto states = wackamole::to_member_states(set, members);
  wackamole::VipTable table;  // everything uncovered
  for (auto _ : state) {
    auto a = wackamole::reallocate_ips_fast(set, table, states);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_ReallocateIps)
    ->Args({10, 4})
    ->Args({100, 12})
    ->Args({1000, 32})
    ->Args({4096, 64});

void BM_ReallocateIpsLegacy(benchmark::State& state) {
  auto groups = make_groups(static_cast<int>(state.range(0)));
  auto members = make_members(static_cast<int>(state.range(1)));
  wackamole::VipTable table;  // everything uncovered
  for (auto _ : state) {
    auto a = wackamole::legacy_reallocate_ips(groups, table, members);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_ReallocateIpsLegacy)
    ->Args({10, 4})
    ->Args({100, 12})
    ->Args({1000, 32})
    ->Args({4096, 64});

void BM_BalanceIps(benchmark::State& state) {
  auto groups = make_groups(static_cast<int>(state.range(0)));
  auto members = make_members(static_cast<int>(state.range(1)));
  wackamole::GroupSet set(groups);
  auto states = wackamole::to_member_states(set, members);
  wackamole::VipTable table;
  for (const auto& g : groups) table.set_owner(g, members[0].id);
  for (auto _ : state) {
    auto a = wackamole::balance_ips_fast(set, table, states);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_BalanceIps)
    ->Args({10, 4})
    ->Args({100, 12})
    ->Args({1000, 32})
    ->Args({4096, 64});

void BM_BalanceIpsLegacy(benchmark::State& state) {
  auto groups = make_groups(static_cast<int>(state.range(0)));
  auto members = make_members(static_cast<int>(state.range(1)));
  wackamole::VipTable table;
  for (const auto& g : groups) table.set_owner(g, members[0].id);
  for (auto _ : state) {
    auto a = wackamole::legacy_balance_ips(groups, table, members);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_BalanceIpsLegacy)
    ->Args({10, 4})
    ->Args({100, 12})
    ->Args({1000, 32})
    ->Args({4096, 64});

void BM_ResolveConflictClaims(benchmark::State& state) {
  auto groups = make_groups(64);
  gcs::GroupView view;
  view.members = {member(0), member(1)};
  for (auto _ : state) {
    wackamole::VipTable table;
    for (const auto& g : groups) table.claim(g, member(0), view);
    for (const auto& g : groups) table.claim(g, member(1), view);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ResolveConflictClaims);

// ---- STATE_MSG build + encode: wire v2 vs the pre-fast-path v1 path ----
//
// Measures what a daemon pays per STATE_MSG send, replicating each
// generation's send_state_msg() exactly (minus the ip_manager holds()
// probe, which both generations pay identically). The v1 path collected
// owned names as strings and std::sort'ed them, copied the preference
// strings, walked the quarantine set into a string vector, and ran the
// no-reserve v1 encoder. The v2 path emits owned ids in (pre-sorted)
// position order, copies GroupId vectors, interns the quarantine names,
// and runs the compact v2 encoder, whose name table is built with O(1)
// stamp checks per id. Names are long with a shared prefix, as real
// deployment names ("wackamole-cluster-vip-...") are — which is exactly
// what makes the legacy sort and copies expensive.

std::vector<std::string> make_wire_names(int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back("wackamole-production-virtual-address-" +
                  std::to_string(100000 + i));
  }
  return out;
}

// The daemon's per-send state: every VIP owned, every 4th preferred,
// every 16th quarantined (overlapping lists, the name table dedupes).
struct WireFixture {
  explicit WireFixture(int n) {
    auto names = make_wire_names(n);
    for (int i = 0; i < n; ++i) {
      owned.push_back(names[static_cast<std::size_t>(i)]);
      owned_ids.push_back(
          wackamole::intern_group(names[static_cast<std::size_t>(i)]));
      if (i % 4 == 0) {
        preferred.push_back(owned.back());
        preferred_ids.push_back(owned_ids.back());
      }
      if (i % 16 == 0) quarantined_set.insert(owned.back());
    }
  }
  std::vector<std::string> owned, preferred;
  std::set<std::string> quarantined_set;  // Daemon::quarantined_ replica
  std::vector<wackamole::GroupId> owned_ids, preferred_ids;
};

void BM_StateEncode(benchmark::State& state) {
  WireFixture fx(static_cast<int>(state.range(0)));
  const wackamole::ViewTag tag{42, 0x0a000001, 7};
  for (auto _ : state) {
    wackamole::StateMsgV2 m;
    m.view = tag;
    m.mature = true;
    m.weight = 1;
    m.owned = fx.owned_ids;  // position order is already name order
    m.preferred = fx.preferred_ids;
    m.quarantined.reserve(fx.quarantined_set.size());
    for (const auto& name : fx.quarantined_set) {
      m.quarantined.push_back(wackamole::intern_group(name));
    }
    auto bytes = wackamole::encode_state_v2(m);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StateEncode)->Arg(256)->Arg(1024)->Arg(4096);

void BM_StateEncodeLegacy(benchmark::State& state) {
  WireFixture fx(static_cast<int>(state.range(0)));
  const wackamole::ViewTag tag{42, 0x0a000001, 7};
  for (auto _ : state) {
    wackamole::StateMsg m;
    m.view = tag;
    m.mature = true;
    m.weight = 1;
    m.owned = fx.owned;  // Daemon::owned(): collect + sort
    std::sort(m.owned.begin(), m.owned.end());
    m.preferred = fx.preferred;
    m.quarantined = std::vector<std::string>(fx.quarantined_set.begin(),
                                             fx.quarantined_set.end());
    auto bytes = legacy::encode_state(m);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StateEncodeLegacy)->Arg(256)->Arg(1024)->Arg(4096);

// Informative decode-side twin: v2 decoding interns each table name once
// and reads varint indices; v1 decoding re-allocates every string.
void BM_StateDecode(benchmark::State& state) {
  WireFixture fx(static_cast<int>(state.range(0)));
  wackamole::StateMsgV2 m;
  m.view = wackamole::ViewTag{42, 0x0a000001, 7};
  m.mature = true;
  m.owned = fx.owned_ids;
  m.preferred = fx.preferred_ids;
  for (const auto& name : fx.quarantined_set) {
    m.quarantined.push_back(wackamole::intern_group(name));
  }
  auto bytes = wackamole::encode_state_v2(m);
  for (auto _ : state) {
    auto decoded = wackamole::decode_state_v2(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StateDecode)->Arg(256)->Arg(1024)->Arg(4096);

void BM_StateDecodeLegacy(benchmark::State& state) {
  WireFixture fx(static_cast<int>(state.range(0)));
  wackamole::StateMsg m;
  m.view = wackamole::ViewTag{42, 0x0a000001, 7};
  m.mature = true;
  m.owned = fx.owned;
  m.preferred = fx.preferred;
  m.quarantined = std::vector<std::string>(fx.quarantined_set.begin(),
                                           fx.quarantined_set.end());
  auto bytes = wackamole::encode_state(m);
  for (auto _ : state) {
    auto decoded = wackamole::decode_state(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StateDecodeLegacy)->Arg(256)->Arg(1024)->Arg(4096);

void BM_StateMsgCodec(benchmark::State& state) {
  wackamole::StateMsg m;
  m.view = wackamole::ViewTag{42, 1, 7};
  m.mature = true;
  for (int i = 0; i < 32; ++i) m.owned.push_back("vip-" + std::to_string(i));
  for (auto _ : state) {
    auto bytes = wackamole::encode_state(m);
    auto decoded = wackamole::decode_state(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_StateMsgCodec);

void BM_GcsDataCodec(benchmark::State& state) {
  gcs::DataMessage d;
  d.view = gcs::ViewId{7, member(0).daemon};
  d.seq = 42;
  d.sender = member(1);
  d.group = "wackamole";
  d.payload = util::Bytes(256, 0xab);
  for (auto _ : state) {
    auto bytes = gcs::encode(gcs::Message(d));
    auto decoded = gcs::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_GcsDataCodec);

void BM_ArpCacheLookup(benchmark::State& state) {
  net::ArpCache cache;
  for (int i = 0; i < 256; ++i) {
    cache.put(net::Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i)),
              net::MacAddress::from_index(static_cast<std::uint16_t>(i)),
              sim::TimePoint{});
  }
  int i = 0;
  for (auto _ : state) {
    auto mac = cache.lookup(
        net::Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i++ & 0xff)),
        sim::TimePoint{});
    benchmark::DoNotOptimize(mac);
  }
}
BENCHMARK(BM_ArpCacheLookup);

// End-to-end: one UDP request/response round trip through the simulated
// stack (ARP resolved once up front).
void BM_SimulatedUdpRoundTrip(benchmark::State& state) {
  sim::Scheduler sched;
  net::Fabric fabric(sched);
  auto seg = fabric.add_segment();
  net::Host server(sched, fabric, "server");
  server.add_interface(seg, net::Ipv4Address(10, 0, 0, 1), 24);
  net::Host client(sched, fabric, "client");
  client.add_interface(seg, net::Ipv4Address(10, 0, 0, 2), 24);
  apps::EchoServer echo(server);
  echo.start();
  std::uint64_t replies = 0;
  client.open_udp(5000, [&](const net::Host::UdpContext&,
                            const util::SharedBytes&) { ++replies; });
  // Warm the ARP caches.
  client.send_udp(net::Ipv4Address(10, 0, 0, 1), 9000, 5000, {0});
  sched.run_all();
  for (auto _ : state) {
    client.send_udp(net::Ipv4Address(10, 0, 0, 1), 9000, 5000, {1});
    sched.run_all();
  }
  benchmark::DoNotOptimize(replies);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedUdpRoundTrip);

// ---- Scheduler timer churn: the fail-over protocol's hot loop ----
//
// Every heartbeat period each daemon arms a fault-detection timer, hears
// the heartbeat, cancels it and re-arms. Modelled here as: arm a batch of
// timers, cancel half, fire the rest, repeat. The "after" side uses the
// slab scheduler (no per-event allocation once the slab is warm); the
// legacy side pays a make_shared + a std::function heap capture per event.

constexpr int kChurnBatch = 64;

void BM_SchedulerTimerChurn(benchmark::State& state) {
  sim::Scheduler sched;
  std::uint64_t fired = 0;
  std::vector<sim::TimerHandle> handles(kChurnBatch);
  for (auto _ : state) {
    for (int i = 0; i < kChurnBatch; ++i) {
      handles[static_cast<std::size_t>(i)] =
          sched.schedule(sim::milliseconds(i + 1), [&fired] { ++fired; });
    }
    for (int i = 0; i < kChurnBatch; i += 2) {
      handles[static_cast<std::size_t>(i)].cancel();
    }
    sched.run_all();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * kChurnBatch);
}
BENCHMARK(BM_SchedulerTimerChurn);

void BM_SchedulerTimerChurnLegacy(benchmark::State& state) {
  legacy::Scheduler sched;
  std::uint64_t fired = 0;
  std::vector<legacy::TimerHandle> handles(kChurnBatch);
  for (auto _ : state) {
    for (int i = 0; i < kChurnBatch; ++i) {
      handles[static_cast<std::size_t>(i)] =
          sched.schedule(sim::milliseconds(i + 1), [&fired] { ++fired; });
    }
    for (int i = 0; i < kChurnBatch; i += 2) {
      handles[static_cast<std::size_t>(i)].cancel();
    }
    sched.run_all();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * kChurnBatch);
}
BENCHMARK(BM_SchedulerTimerChurnLegacy);

// ---- Broadcast fan-out: one frame to N receivers ----
//
// The fabric delivers a broadcast by scheduling one delivery event per
// attached NIC, each capturing its own copy of the frame. After the COW
// change those copies share one refcounted payload buffer; before, each
// was a fresh heap allocation + memcpy of the full payload (and the
// delivery closure itself spilled to the heap inside std::function).

constexpr int kFanOut = 16;
constexpr std::size_t kPayloadSize = 1024;

void BM_FabricBroadcastDelivery(benchmark::State& state) {
  sim::Scheduler sched;
  net::Frame frame;
  frame.dst = net::MacAddress::broadcast();
  frame.src = net::MacAddress::from_index(1);
  frame.type = net::EtherType::kIpv4;
  frame.payload = util::Bytes(kPayloadSize, 0x5a);
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    for (int i = 0; i < kFanOut; ++i) {
      sched.schedule(sim::microseconds(5), [frame, &delivered] {
        delivered += frame.payload.size();
      });
    }
    sched.run_all();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * kFanOut);
}
BENCHMARK(BM_FabricBroadcastDelivery);

void BM_FabricBroadcastDeliveryLegacy(benchmark::State& state) {
  legacy::Scheduler sched;
  legacy::Frame frame;
  frame.dst = net::MacAddress::broadcast();
  frame.src = net::MacAddress::from_index(1);
  frame.payload = util::Bytes(kPayloadSize, 0x5a);
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    for (int i = 0; i < kFanOut; ++i) {
      sched.schedule(sim::microseconds(5), [frame, &delivered] {
        delivered += frame.payload.size();
      });
    }
    sched.run_all();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * kFanOut);
}
BENCHMARK(BM_FabricBroadcastDeliveryLegacy);

// End-to-end broadcast through the real fabric: one limited-broadcast
// datagram reaching every host on the segment (COW payload sharing in
// anger, ARP-free).
void BM_FabricBroadcastEndToEnd(benchmark::State& state) {
  sim::Scheduler sched;
  net::Fabric fabric(sched);
  auto seg = fabric.add_segment();
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::uint64_t received = 0;
  for (int i = 0; i < kFanOut; ++i) {
    auto h = std::make_unique<net::Host>(sched, fabric,
                                         "h" + std::to_string(i));
    h->add_interface(seg, net::Ipv4Address(10, 0, 0,
                                           static_cast<std::uint8_t>(i + 1)),
                     24);
    h->open_udp(7000, [&received](const net::Host::UdpContext&,
                                  const util::SharedBytes& payload) {
      received += payload.size();
    });
    hosts.push_back(std::move(h));
  }
  util::Bytes payload(kPayloadSize, 0x7e);
  for (auto _ : state) {
    hosts[0]->send_udp_broadcast(0, 7000, 7001, payload);
    sched.run_all();
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations() * (kFanOut - 1));
}
BENCHMARK(BM_FabricBroadcastEndToEnd);

}  // namespace

// Custom main: when the caller passes no --benchmark_out flag, default to
// writing BENCH_micro_core.json in the working directory so CI and the
// docs' "run the benches" instructions get machine-readable output for
// free (tools/check_bench.py consumes it).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_core.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
