// Google-benchmark microbenchmarks for the hot algorithm and substrate
// paths: the deterministic allocation procedures, wire codecs, ARP cache
// and end-to-end simulated packet delivery.
#include <benchmark/benchmark.h>

#include <memory>

#include "apps/echo.hpp"
#include "gcs/message.hpp"
#include "net/fabric.hpp"
#include "net/host.hpp"
#include "wackamole/balance.hpp"
#include "wackamole/wire.hpp"

using namespace wam;

namespace {

gcs::MemberId member(int n) {
  return gcs::MemberId{
      gcs::DaemonId(net::Ipv4Address(10, 0, static_cast<std::uint8_t>(n / 250),
                                     static_cast<std::uint8_t>(n % 250 + 1))),
      1, "w"};
}

std::vector<std::string> make_groups(int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back("vip-" + std::to_string(1000 + i));
  }
  return out;
}

std::vector<wackamole::MemberInfo> make_members(int m) {
  std::vector<wackamole::MemberInfo> out;
  for (int i = 0; i < m; ++i) {
    out.push_back(wackamole::MemberInfo{member(i), true, 1, {}});
  }
  return out;
}

void BM_ReallocateIps(benchmark::State& state) {
  auto groups = make_groups(static_cast<int>(state.range(0)));
  auto members = make_members(static_cast<int>(state.range(1)));
  wackamole::VipTable table;  // everything uncovered
  for (auto _ : state) {
    auto a = wackamole::reallocate_ips(groups, table, members);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_ReallocateIps)->Args({10, 4})->Args({100, 12})->Args({1000, 32});

void BM_BalanceIps(benchmark::State& state) {
  auto groups = make_groups(static_cast<int>(state.range(0)));
  auto members = make_members(static_cast<int>(state.range(1)));
  wackamole::VipTable table;
  for (const auto& g : groups) table.set_owner(g, members[0].id);
  for (auto _ : state) {
    auto a = wackamole::balance_ips(groups, table, members);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_BalanceIps)->Args({10, 4})->Args({100, 12})->Args({1000, 32});

void BM_ResolveConflictClaims(benchmark::State& state) {
  auto groups = make_groups(64);
  gcs::GroupView view;
  view.members = {member(0), member(1)};
  for (auto _ : state) {
    wackamole::VipTable table;
    for (const auto& g : groups) table.claim(g, member(0), view);
    for (const auto& g : groups) table.claim(g, member(1), view);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ResolveConflictClaims);

void BM_StateMsgCodec(benchmark::State& state) {
  wackamole::StateMsg m;
  m.view = wackamole::ViewTag{42, 1, 7};
  m.mature = true;
  for (int i = 0; i < 32; ++i) m.owned.push_back("vip-" + std::to_string(i));
  for (auto _ : state) {
    auto bytes = wackamole::encode_state(m);
    auto decoded = wackamole::decode_state(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_StateMsgCodec);

void BM_GcsDataCodec(benchmark::State& state) {
  gcs::DataMessage d;
  d.view = gcs::ViewId{7, member(0).daemon};
  d.seq = 42;
  d.sender = member(1);
  d.group = "wackamole";
  d.payload.assign(256, 0xab);
  for (auto _ : state) {
    auto bytes = gcs::encode(gcs::Message(d));
    auto decoded = gcs::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_GcsDataCodec);

void BM_ArpCacheLookup(benchmark::State& state) {
  net::ArpCache cache;
  for (int i = 0; i < 256; ++i) {
    cache.put(net::Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i)),
              net::MacAddress::from_index(static_cast<std::uint16_t>(i)),
              sim::TimePoint{});
  }
  int i = 0;
  for (auto _ : state) {
    auto mac = cache.lookup(
        net::Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i++ & 0xff)),
        sim::TimePoint{});
    benchmark::DoNotOptimize(mac);
  }
}
BENCHMARK(BM_ArpCacheLookup);

// End-to-end: one UDP request/response round trip through the simulated
// stack (ARP resolved once up front).
void BM_SimulatedUdpRoundTrip(benchmark::State& state) {
  sim::Scheduler sched;
  net::Fabric fabric(sched);
  auto seg = fabric.add_segment();
  net::Host server(sched, fabric, "server");
  server.add_interface(seg, net::Ipv4Address(10, 0, 0, 1), 24);
  net::Host client(sched, fabric, "client");
  client.add_interface(seg, net::Ipv4Address(10, 0, 0, 2), 24);
  apps::EchoServer echo(server);
  echo.start();
  std::uint64_t replies = 0;
  client.open_udp(5000, [&](const net::Host::UdpContext&,
                            const util::Bytes&) { ++replies; });
  // Warm the ARP caches.
  client.send_udp(net::Ipv4Address(10, 0, 0, 1), 9000, 5000, {0});
  sched.run_all();
  for (auto _ : state) {
    client.send_udp(net::Ipv4Address(10, 0, 0, 1), 9000, 5000, {1});
    sched.run_all();
  }
  benchmark::DoNotOptimize(replies);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedUdpRoundTrip);

}  // namespace

BENCHMARK_MAIN();
