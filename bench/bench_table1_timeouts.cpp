// Table 1 — Spread timeout tuning.
//
// Prints the two timeout configurations (default vs tuned) and MEASURES the
// resulting failure-notification latency: the time from an interface fault
// to the surviving daemons installing the reduced membership. The paper
// derives the range [fault_detection - heartbeat, fault_detection] for
// detection plus one discovery timeout for reconfiguration, i.e. 10-12 s
// default and 2-2.4 s tuned.
#include <cstdio>
#include <memory>
#include <vector>

#include "gcs/daemon.hpp"
#include "net/fabric.hpp"
#include "sim/stats.hpp"

#include "bench_common.hpp"

using namespace wam;

namespace {

double notification_latency_trial(const gcs::Config& config,
                                  sim::Duration fault_phase) {
  sim::Scheduler sched;
  sim::Log log(sched);
  net::Fabric fabric(sched, &log);
  auto seg = fabric.add_segment();

  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<gcs::Daemon>> daemons;
  for (int i = 0; i < 4; ++i) {
    auto h = std::make_unique<net::Host>(sched, fabric,
                                         "s" + std::to_string(i + 1), &log);
    h->add_interface(
        seg, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)), 24);
    auto d = std::make_unique<gcs::Daemon>(*h, config, &log);
    d->start();
    hosts.push_back(std::move(h));
    daemons.push_back(std::move(d));
  }
  sched.run_for(config.discovery_timeout * 4 + sim::seconds(5.0));
  if (!daemons[0]->in_op() || daemons[0]->view().members.size() != 4) {
    return -1.0;
  }
  sched.run_for(fault_phase);
  auto fault_time = sched.now();
  hosts[3]->set_interface_up(0, false);
  while (sched.now() - fault_time < sim::seconds(30.0)) {
    sched.run_for(sim::milliseconds(5));
    if (daemons[0]->in_op() && daemons[0]->view().members.size() == 3) {
      return sim::to_seconds(sched.now() - fault_time);
    }
  }
  return -1.0;
}

void run(const char* label, const gcs::Config& config) {
  std::printf("\n%-16s fault-detection=%.1fs heartbeat=%.1fs discovery=%.1fs\n",
              label, sim::to_seconds(config.fault_detection_timeout),
              sim::to_seconds(config.heartbeat_timeout),
              sim::to_seconds(config.discovery_timeout));
  double lo = sim::to_seconds(config.fault_detection_timeout -
                              config.heartbeat_timeout +
                              config.discovery_timeout);
  double hi = sim::to_seconds(config.fault_detection_timeout +
                              config.discovery_timeout);
  std::printf("%-16s predicted notification latency: %.1f - %.1f s\n", "",
              lo, hi);
  sim::Stats stats;
  for (int trial = 0; trial < 12; ++trial) {
    auto phase =
        sim::Duration(config.heartbeat_timeout.count() * trial / 12);
    double latency = notification_latency_trial(config, phase);
    if (latency >= 0) stats.add(latency);
  }
  bench::print_row(std::string(label) + " measured", stats, "s");
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1: Spread timeout tuning and failure-notification latency",
      "default 5/2/7 s -> 10-12 s notification; tuned 1/0.4/1.4 s -> "
      "2-2.4 s");
  std::printf("\n  %-22s %-16s %-16s\n", "Parameter", "Default Spread",
              "Tuned Spread");
  std::printf("  %-22s %-16s %-16s\n", "Fault-detection", "5 s", "1 s");
  std::printf("  %-22s %-16s %-16s\n", "Distributed heartbeat", "2 s",
              "0.4 s");
  std::printf("  %-22s %-16s %-16s\n", "Discovery", "7 s", "1.4 s");

  run("default-spread", gcs::Config::spread_default());
  run("tuned-spread", gcs::Config::spread_tuned());
  return 0;
}
