// Figure 5 — Average availability interruption with varying cluster size.
//
// The paper's main experiment: a cluster of 2-12 servers maintains 10
// virtual addresses; a client probes one VIP at 10 ms intervals; the owner's
// interface is disconnected; the interruption is the gap between the last
// response from the dead server and the first from its heir. Two series:
// default Spread timeouts (5/2/7 s) and tuned (1/0.4/1.4 s).
//
// Expected shape (paper): roughly flat in cluster size, ~10-12 s for the
// default configuration and ~2-3 s tuned — the GCS timeouts dominate.
#include <cstdio>

#include "bench_common.hpp"
#include "util/parallel.hpp"

using namespace wam;

int main() {
  bench::print_header(
      "Figure 5: average availability interruption vs cluster size",
      "default ~11-12 s, tuned ~2.5-3 s, both roughly flat in cluster size");

  const int kTrials = 5;
  struct Series {
    const char* label;
    gcs::Config config;
  };
  Series series[] = {
      {"default-spread", gcs::Config::spread_default()},
      {"tuned-spread", gcs::Config::spread_tuned()},
  };

  // Every (cluster size, series, trial) combination is an independent
  // simulation universe, so run them all through the parallel fan-out and
  // aggregate afterwards in the fixed combo order — the printed table is
  // byte-identical to a sequential run whatever the worker count.
  struct Combo {
    int n = 0;
    int series_idx = 0;
    int trial = 0;
  };
  std::vector<Combo> combos;
  for (int n : {2, 4, 6, 8, 10, 12}) {
    for (int si = 0; si < 2; ++si) {
      for (int trial = 0; trial < kTrials; ++trial) {
        combos.push_back({n, si, trial});
      }
    }
  }
  std::vector<double> secs_by_combo(combos.size());
  util::parallel_for(combos.size(), util::default_jobs(),
                     [&](std::size_t i) {
                       const auto& c = combos[i];
                       const auto& s = series[c.series_idx];
                       apps::ClusterOptions opt;
                       opt.num_servers = c.n;
                       opt.num_vips = 10;
                       opt.gcs = s.config;
                       opt.seed = static_cast<std::uint64_t>(c.trial + 1);
                       auto phase =
                           sim::Duration(s.config.heartbeat_timeout.count() *
                                         (2 * c.trial + 1) / (2 * kTrials));
                       secs_by_combo[i] = bench::interruption_trial(opt, phase);
                     });

  std::printf("\n  %-8s %-18s %-18s\n", "servers", "default (s)", "tuned (s)");
  std::vector<std::string> csv;
  csv.push_back("cluster_size,config,mean_s,min_s,max_s,n");
  std::size_t combo_idx = 0;
  for (int n : {2, 4, 6, 8, 10, 12}) {
    std::printf("  %-8d", n);
    for (const auto& s : series) {
      sim::Stats stats;
      for (int trial = 0; trial < kTrials; ++trial) {
        double secs = secs_by_combo[combo_idx++];
        if (secs >= 0) stats.add(secs);
      }
      if (stats.empty()) {
        std::printf(" %-18s", "n/a");
      } else {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.2f [%.2f-%.2f]", stats.mean(),
                      stats.min(), stats.max());
        std::printf(" %-18s", cell);
        char line[128];
        std::snprintf(line, sizeof(line), "%d,%s,%.3f,%.3f,%.3f,%zu", n,
                      s.label, stats.mean(), stats.min(), stats.max(),
                      stats.count());
        csv.emplace_back(line);
      }
    }
    std::printf("\n");
  }

  std::printf("\nCSV:\n");
  for (const auto& line : csv) std::printf("%s\n", line.c_str());
  return 0;
}
