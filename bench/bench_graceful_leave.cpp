// Section 6 (voluntary departure) — availability interruption when a
// Wackamole daemon leaves gracefully.
//
// Leaving is a lightweight group-membership change (no daemon
// reconfiguration, no fault-detection wait), so the survivors reallocate
// within milliseconds. The paper reports a conservative upper bound of
// 250 ms with most measurements around 10 ms.
#include <cstdio>

#include "bench_common.hpp"

using namespace wam;

namespace {

double graceful_trial(int num_servers, int trial) {
  apps::ClusterOptions opt;
  opt.num_servers = num_servers;
  opt.num_vips = 10;
  opt.gcs = gcs::Config::spread_tuned();
  opt.seed = static_cast<std::uint64_t>(trial + 1);
  apps::ClusterScenario s(opt);
  s.start();
  if (!s.run_until_stable(sim::seconds(30.0))) return -1.0;
  s.wam(0).trigger_balance();
  s.run(sim::seconds(1.0));
  s.start_probe(0);
  s.run(sim::milliseconds(1000 + 37 * trial));
  int victim = s.owner_of(0);
  if (victim < 0) return -1.0;
  s.graceful_leave(victim);
  s.run(sim::seconds(3.0));
  return sim::to_millis(s.probe().longest_gap());
}

}  // namespace

int main() {
  bench::print_header(
      "Graceful leave: availability interruption on voluntary departure",
      "most measurements ~10 ms; conservative upper bound 250 ms");

  for (int n : {3, 6, 12}) {
    sim::Stats stats;
    for (int trial = 0; trial < 10; ++trial) {
      double ms = graceful_trial(n, trial);
      if (ms >= 0) stats.add(ms);
    }
    bench::print_row(std::to_string(n) + " servers", stats, "ms");
  }
  std::printf(
      "\nNote: the gap is the worst spacing between consecutive probe\n"
      "responses (10 ms probe interval), so ~20-30 ms means the hand-off\n"
      "itself cost only a few probe intervals.\n");
  return 0;
}
