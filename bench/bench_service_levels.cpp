// Service-level latency (extension): the cost of each delivery guarantee.
//
// One multicast, measured from send to the LAST member's dispatch, across
// the four service levels and both ordering engines. Expectations:
// FIFO/CAUSAL ~ one broadcast hop; AGREED adds the sequencer hop (or a
// half token rotation); SAFE adds the wait for stability gossip.
#include <cstdio>
#include <memory>
#include <vector>

#include "gcs/client.hpp"
#include "sim/stats.hpp"

#include "bench_common.hpp"

using namespace wam;

namespace {

struct Lab {
  sim::Scheduler sched;
  sim::Log log{sched};
  net::Fabric fabric{sched, &log};
  net::SegmentId seg = fabric.add_segment();
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<gcs::Daemon>> daemons;
  std::vector<std::unique_ptr<gcs::Client>> clients;
  std::vector<std::vector<sim::TimePoint>> deliveries;

  Lab(int n, const gcs::Config& config) {
    deliveries.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto h = std::make_unique<net::Host>(sched, fabric,
                                           "s" + std::to_string(i + 1), &log);
      h->add_interface(
          seg, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
          24);
      auto d = std::make_unique<gcs::Daemon>(*h, config, &log);
      d->start();
      hosts.push_back(std::move(h));
      daemons.push_back(std::move(d));
    }
    sched.run_for(sim::seconds(5.0));
    for (int i = 0; i < n; ++i) {
      gcs::ClientCallbacks cb;
      auto idx = static_cast<std::size_t>(i);
      cb.on_message = [this, idx](const gcs::GroupMessage&) {
        deliveries[idx].push_back(sched.now());
      };
      auto c = std::make_unique<gcs::Client>("c" + std::to_string(i),
                                             std::move(cb));
      c->connect(*daemons[idx]);
      c->join("g");
      clients.push_back(std::move(c));
    }
    sched.run_for(sim::seconds(1.0));
  }

  double latency_ms(gcs::ServiceType service, int trials) {
    sim::Stats stats;
    for (int t = 0; t < trials; ++t) {
      for (auto& d : deliveries) d.clear();
      auto t0 = sched.now();
      clients[static_cast<std::size_t>(t % clients.size())]->multicast(
          "g", util::Bytes{'x'}, service);
      sched.run_for(sim::seconds(2.0));
      sim::TimePoint last{};
      bool all = true;
      for (auto& d : deliveries) {
        if (d.empty()) {
          all = false;
          break;
        }
        last = std::max(last, d.front());
      }
      if (all) stats.add(sim::to_millis(last - t0));
    }
    return stats.empty() ? -1.0 : stats.mean();
  }
};

}  // namespace

int main() {
  bench::print_header(
      "Service levels: delivery latency by guarantee (5 daemons)",
      "FIFO/CAUSAL ~ 1 hop; AGREED adds ordering; SAFE waits for "
      "stability gossip");

  struct Engine {
    const char* label;
    gcs::Config config;
  };
  Engine engines[] = {
      {"sequencer", gcs::Config::spread_tuned()},
      {"token-ring", gcs::Config::spread_tuned().with_token_ring()},
  };
  std::printf("\n  %-12s %-10s %-10s %-10s %-10s   (ms to last member)\n",
              "engine", "fifo", "causal", "agreed", "safe");
  for (const auto& engine : engines) {
    Lab lab(5, engine.config);
    double fifo = lab.latency_ms(gcs::ServiceType::kFifo, 10);
    double causal = lab.latency_ms(gcs::ServiceType::kCausal, 10);
    double agreed = lab.latency_ms(gcs::ServiceType::kAgreed, 10);
    double safe = lab.latency_ms(gcs::ServiceType::kSafe, 10);
    std::printf("  %-12s %-10.2f %-10.2f %-10.2f %-10.2f\n", engine.label,
                fifo, causal, agreed, safe);
  }
  return 0;
}
