// Ordering-engine comparison (extension): coordinator-sequencer vs
// Totem-style token ring, the two classic total-order constructions (the
// real Spread uses the ring; our default is the sequencer).
//
// Reports, per engine: message-delivery latency (multicast to last
// member's delivery), sustained throughput over a burst, fail-over
// interruption for the full Wackamole stack, and protocol overhead
// (frames on the wire per delivered message).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gcs/client.hpp"
#include "sim/stats.hpp"

#include "bench_common.hpp"

using namespace wam;

namespace {

struct OrderingLab {
  sim::Scheduler sched;
  sim::Log log{sched};
  net::Fabric fabric{sched, &log};
  net::SegmentId seg = fabric.add_segment();
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<gcs::Daemon>> daemons;
  std::vector<std::unique_ptr<gcs::Client>> clients;
  std::vector<std::vector<sim::TimePoint>> deliveries;

  OrderingLab(int n, const gcs::Config& config) {
    deliveries.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto h = std::make_unique<net::Host>(sched, fabric,
                                           "s" + std::to_string(i + 1), &log);
      h->add_interface(
          seg, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
          24);
      auto d = std::make_unique<gcs::Daemon>(*h, config, &log);
      d->start();
      hosts.push_back(std::move(h));
      daemons.push_back(std::move(d));
    }
    sched.run_for(sim::seconds(5.0));
    for (int i = 0; i < n; ++i) {
      gcs::ClientCallbacks cb;
      auto idx = static_cast<std::size_t>(i);
      cb.on_message = [this, idx](const gcs::GroupMessage&) {
        deliveries[idx].push_back(sched.now());
      };
      auto c = std::make_unique<gcs::Client>("c" + std::to_string(i),
                                             std::move(cb));
      c->connect(*daemons[idx]);
      c->join("g");
      clients.push_back(std::move(c));
    }
    sched.run_for(sim::seconds(1.0));
  }
};

void run_engine(const char* label, const gcs::Config& config) {
  const int kN = 6;
  OrderingLab lab(kN, config);

  // Latency: single message, measure multicast -> last delivery.
  sim::Stats latency;
  for (int trial = 0; trial < 20; ++trial) {
    for (auto& d : lab.deliveries) d.clear();
    auto t0 = lab.sched.now();
    lab.clients[static_cast<std::size_t>(trial % kN)]->multicast(
        "g", util::Bytes{'x'});
    lab.sched.run_for(sim::milliseconds(200));
    sim::TimePoint last{};
    bool all = true;
    for (auto& d : lab.deliveries) {
      if (d.empty()) {
        all = false;
        break;
      }
      last = std::max(last, d.front());
    }
    if (all) latency.add(sim::to_millis(last - t0));
  }

  // Throughput: 500-message burst from all members, time to full delivery.
  for (auto& d : lab.deliveries) d.clear();
  auto frames_before = lab.fabric.counters().frames_sent;
  auto t0 = lab.sched.now();
  for (int i = 0; i < 500; ++i) {
    lab.clients[static_cast<std::size_t>(i % kN)]->multicast(
        "g", util::Bytes{'y'});
  }
  while (lab.deliveries[kN - 1].size() < 500 &&
         lab.sched.now() - t0 < sim::seconds(30.0)) {
    lab.sched.run_for(sim::milliseconds(10));
  }
  double burst_secs = sim::to_seconds(lab.sched.now() - t0);
  double throughput = 500.0 / burst_secs;
  auto frames = lab.fabric.counters().frames_sent - frames_before;

  std::printf("  %-12s latency: mean=%6.2f ms [%5.2f-%5.2f]   "
              "burst: %7.0f msg/s   frames/msg: %.1f\n",
              label, latency.mean(), latency.min(), latency.max(),
              throughput, static_cast<double>(frames) / 500.0);
}

double wam_interruption(const gcs::Config& config) {
  apps::ClusterOptions opt;
  opt.num_servers = 4;
  opt.num_vips = 10;
  opt.gcs = config;
  return bench::interruption_trial(opt, sim::milliseconds(137));
}

}  // namespace

int main() {
  bench::print_header(
      "Ordering engines: coordinator sequencer vs Totem-style token ring",
      "both satisfy the Wackamole contract; the ring trades latency for "
      "decentralization and built-in flow control");

  auto seq = gcs::Config::spread_tuned();
  auto ring = gcs::Config::spread_tuned().with_token_ring();

  std::printf("\nmessage ordering (6 daemons):\n");
  run_engine("sequencer", seq);
  run_engine("token-ring", ring);

  std::printf("\nfull-stack fail-over interruption (4 servers, 10 VIPs):\n");
  std::printf("  %-12s %6.2f s\n", "sequencer", wam_interruption(seq));
  std::printf("  %-12s %6.2f s\n", "token-ring", wam_interruption(ring));
  return 0;
}
