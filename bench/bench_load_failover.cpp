// Heavy-traffic fail-over sweep: what a takeover COSTS under load.
//
// The paper's §6 experiment measures fail-over as one probe stream's
// interruption. This bench replays the same fault under an open-loop
// client population (src/load): flows arrive at a configured rate,
// pick VIPs by Zipf popularity, and the harness reports request-weighted
// availability — lost and retried requests, downtime weighted by offered
// load, and the p99/p999 response-time gap around the takeover — for
// Wackamole, VRRP, HSRP and Linux Fake over a traffic-rate x cluster-size
// grid.
//
// The headline cell is 16 members x 256 VIPs at the high rate: more than
// a million simulated flows through a single takeover.
//
// With --json FILE, also writes wall-clock rows as google-benchmark style
// JSON (name BM_LoadFailover/<proto>/<members>/<vips>/<rate>, real_time
// in ms) so tools/check_bench.py can gate regressions against
// bench/BENCH_load_failover.baseline.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "load/harness.hpp"

#include "bench_common.hpp"

using namespace wam;

namespace {

struct Row {
  load::TrialResult result;
  double wall_ms = 0;
  std::string label;  // protocol name, plus engine suffix for sharded rows
};

void write_json(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_load_failover: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i].result;
    // check_bench.py gates on real_time; the trial metrics ride along as
    // extra keys it ignores.
    std::fprintf(f,
                 "    {\"name\": \"BM_LoadFailover/%s/%d/%d/%d\", "
                 "\"run_type\": \"iteration\", \"iterations\": 1, "
                 "\"real_time\": %.3f, \"cpu_time\": %.3f, "
                 "\"time_unit\": \"ms\", \"trial\": %s}%s\n",
                 rows[i].label.c_str(), r.members, r.vips,
                 static_cast<int>(r.flows_per_second), rows[i].wall_ms,
                 rows[i].wall_ms, r.to_json().c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool quick = false;
  int shards = 4;  // shard count for the sharded-engine rows; 0 disables
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;  // small grid only (CI smoke)
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    }
  }

  bench::print_header(
      "Load fail-over sweep: request-weighted availability by protocol",
      "Wackamole loses seconds of offered load; HSRP's 10 s hold time "
      "costs an order of magnitude more at the same rate");

  struct Cell {
    int members;
    int vips;
    double rate;
  };
  std::vector<Cell> grid = {{4, 16, 10000.0}};
  if (!quick) {
    grid.push_back({4, 16, 40000.0});
    grid.push_back({16, 256, 10000.0});
    grid.push_back({16, 256, 75000.0});  // headline: >= 1M flows
  }
  const load::Protocol protocols[] = {
      load::Protocol::kWackamole, load::Protocol::kVrrp,
      load::Protocol::kHsrp, load::Protocol::kFake};

  std::vector<Row> rows;
  std::printf("\n  %-10s %-8s %-6s %-8s %9s %9s %7s %9s %11s %11s %10s\n",
              "protocol", "members", "vips", "rate/s", "flows", "lost",
              "retry", "avail", "downtime_s", "p99gap_ms", "wall_ms");
  for (const auto& cell : grid) {
    for (load::Protocol proto : protocols) {
      load::TrialOptions t;
      t.protocol = proto;
      t.members = cell.members;
      t.vips = cell.vips;
      t.flows_per_second = cell.rate;
      auto wall_start = std::chrono::steady_clock::now();
      auto result = load::run_failover_trial(t);
      double wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
      std::printf(
          "  %-10s %-8d %-6d %-8d %9llu %9llu %7llu %9.5f %11.3f %11.2f "
          "%10.0f\n",
          load::protocol_name(proto), cell.members, cell.vips,
          static_cast<int>(cell.rate),
          static_cast<unsigned long long>(result.flows),
          static_cast<unsigned long long>(result.lost),
          static_cast<unsigned long long>(result.retries),
          result.availability, result.effective_downtime_s,
          result.p99_gap_ms(), wall_ms);
      rows.push_back({result, wall_ms, load::protocol_name(proto)});
    }
    std::printf("\n");
  }

  if (shards > 1) {
    // The sharded-engine rows: the same Wackamole trial run on the
    // conservative-PDES engine at 1 shard (the sequential oracle) and at
    // `shards` shards with worker threads, identical worlds otherwise
    // (clients = shards - 1 in both, so the only variable is parallelism).
    // Speedup = oracle wall / sharded wall; on a single-core host expect
    // ~1x or below — the row exists to report honest numbers, the gain
    // shows up on multicore runners.
    std::printf("  sharded engine (wackamole, %d shards, %d clients):\n",
                shards, shards - 1);
    std::vector<Cell> sharded_grid = {{4, 16, 10000.0}};
    if (!quick) sharded_grid.push_back({16, 256, 75000.0});
    for (const auto& cell : sharded_grid) {
      load::TrialOptions t;
      t.protocol = load::Protocol::kWackamole;
      t.members = cell.members;
      t.vips = cell.vips;
      t.flows_per_second = cell.rate;
      t.clients = shards - 1;
      double wall[2] = {0, 0};
      for (int pass = 0; pass < 2; ++pass) {
        t.shards = pass == 0 ? 1 : shards;
        t.shard_threads = pass == 1;
        auto wall_start = std::chrono::steady_clock::now();
        auto result = load::run_failover_trial(t);
        wall[pass] = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
        const std::string label =
            std::string("wackamole_shards") + std::to_string(t.shards);
        std::printf(
            "  %-10s %-8d %-6d %-8d %9llu %9llu %7llu %9.5f %11.3f %11.2f "
            "%10.0f\n",
            label.c_str(), cell.members, cell.vips,
            static_cast<int>(cell.rate),
            static_cast<unsigned long long>(result.flows),
            static_cast<unsigned long long>(result.lost),
            static_cast<unsigned long long>(result.retries),
            result.availability, result.effective_downtime_s,
            result.p99_gap_ms(), wall[pass]);
        rows.push_back({result, wall[pass], label});
      }
      std::printf("    speedup (oracle / %d-shard threaded): %.2fx\n\n",
                  shards, wall[0] / wall[1]);
    }
  }

  if (json_path != nullptr) write_json(json_path, rows);

  std::printf(
      "Reading the row: downtime_s is lost requests / mean offered rate — \n"
      "seconds of full outage the loss is EQUIVALENT to at that load.\n"
      "p99gap_ms is the p99 response-time increase in the window after the\n"
      "fault vs before (retried-but-answered requests pay it).\n");
  return 0;
}
