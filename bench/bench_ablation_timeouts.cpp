// Ablation — fault-detection timeout vs false positives (Section 4.2).
//
// "Modifying the Spread network-failure probing timeouts must be done on a
// system-specific basis. If not done properly, this tuning can be
// detrimental ... by increasing the number of false-positive network
// failures." We fix the heartbeat at 0.4 s, sweep the fault-detection
// timeout, add 20% random frame loss, and count spurious membership
// reconfigurations over two minutes of fault-free operation — then measure
// the real fail-over latency each setting buys.
#include <cstdio>

#include "bench_common.hpp"

using namespace wam;

namespace {

struct Outcome {
  double spurious_views = 0;  // beyond the expected initial installs
  double interruption = -1;
};

Outcome run_setting(double fd_seconds, double loss) {
  gcs::Config config = gcs::Config::spread_tuned();
  config.fault_detection_timeout = sim::seconds(fd_seconds);
  config.heartbeat_timeout = sim::seconds(0.4);
  config.discovery_timeout = sim::seconds(1.4);

  apps::ClusterOptions opt;
  opt.num_servers = 4;
  opt.num_vips = 10;
  opt.gcs = config;
  apps::ClusterScenario s(opt);
  s.start();
  s.run_until_stable(sim::seconds(30.0));

  std::uint64_t baseline_views = s.obs.registry.sum("gcs/*/views_installed");
  // Lossy, fault-free period.
  s.fabric.segment_config(0).drop_probability = loss;
  s.run(sim::seconds(120.0));
  s.fabric.segment_config(0).drop_probability = 0.0;
  s.run(sim::seconds(10.0));
  std::uint64_t after_views = s.obs.registry.sum("gcs/*/views_installed");

  Outcome out;
  out.spurious_views =
      static_cast<double>(after_views - baseline_views) / 4.0;

  // Real fault: measure interruption.
  s.wam(0).trigger_balance();
  s.run(sim::seconds(1.0));
  s.start_probe(0);
  s.run(sim::seconds(1.0));
  int victim = s.owner_of(0);
  if (victim >= 0) {
    s.disconnect_server(victim);
    s.run(sim::seconds(fd_seconds + 15.0));
    auto gaps = s.probe().interruptions();
    if (!gaps.empty()) {
      out.interruption = sim::to_seconds(gaps.back().length());
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: fault-detection timeout vs false positives (20% loss)",
      "aggressive timeouts detect faster but misfire under load/loss "
      "(Section 4.2 / 6)");

  std::printf("\n  %-22s %-26s %-20s\n", "fault-detection (s)",
              "spurious views / daemon", "real fail-over (s)");
  for (double fd : {0.6, 1.0, 2.0, 4.0}) {
    auto out = run_setting(fd, 0.20);
    std::printf("  %-22.1f %-26.1f %-20.2f\n", fd, out.spurious_views,
                out.interruption);
  }
  std::printf(
      "\n(heartbeat fixed at 0.4 s, discovery at 1.4 s; spurious views are\n"
      "membership installs during a fault-free lossy period.)\n");
  return 0;
}
