// N-way vs pairwise (extension): the paper's architectural argument made
// measurable.
//
// Covering 8 VIPs with 4 servers:
//   * Wackamole: one daemon per server, any server can cover any VIP, the
//     balance round keeps loads even — through ANY fault pattern.
//   * VRRP (keepalived-style): one VRRP instance per VIP with a static
//     priority matrix (round-robin masters, staggered backup priorities).
//     Fail-over works, but the post-fault load depends entirely on the
//     static priorities, and re-balancing never happens.
// We kill two servers, then revive one, and compare coverage + imbalance.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/vrrp.hpp"

#include "bench_common.hpp"

using namespace wam;

namespace {

constexpr int kServers = 4;
constexpr int kVips = 8;

struct VrrpFarm {
  sim::Scheduler sched;
  sim::Log log{sched};
  net::Fabric fabric{sched, &log};
  net::SegmentId seg = fabric.add_segment();
  std::vector<std::unique_ptr<net::Host>> hosts;
  // routers[server][vip]
  std::vector<std::vector<std::unique_ptr<baselines::VrrpRouter>>> routers;

  VrrpFarm() {
    for (int s = 0; s < kServers; ++s) {
      auto h = std::make_unique<net::Host>(sched, fabric,
                                           "srv" + std::to_string(s + 1),
                                           &log);
      h->add_interface(
          seg, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(s + 1)),
          24);
      hosts.push_back(std::move(h));
    }
  }

  net::Ipv4Address vip(int v) {
    return net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(100 + v));
  }

  void report(const char* stage) {
    int covered = 0;
    std::vector<int> load(kServers, 0);
    for (int v = 0; v < kVips; ++v) {
      int owners = 0;
      for (int s = 0; s < kServers; ++s) {
        if (hosts[static_cast<std::size_t>(s)]->is_up() &&
            hosts[static_cast<std::size_t>(s)]->owns_ip(vip(v))) {
          ++owners;
          ++load[static_cast<std::size_t>(s)];
        }
      }
      if (owners >= 1) ++covered;
    }
    int lo = 999, hi = 0;
    for (int s = 0; s < kServers; ++s) {
      if (!hosts[static_cast<std::size_t>(s)]->is_up()) continue;
      lo = std::min(lo, load[static_cast<std::size_t>(s)]);
      hi = std::max(hi, load[static_cast<std::size_t>(s)]);
    }
    std::printf("  %-12s %-12s covered=%d/%d  imbalance=%d\n", "vrrp",
                stage, covered, kVips, hi - lo);
  }
};

void wackamole_run() {
  apps::ClusterOptions opt;
  opt.num_servers = kServers;
  opt.num_vips = kVips;
  opt.gcs = gcs::Config::spread_tuned();
  opt.balance_timeout = sim::seconds(10.0);
  opt.with_router = false;
  apps::ClusterScenario s(opt);
  s.start();
  s.run_until_stable(sim::seconds(30.0));
  s.run(sim::seconds(12.0));  // one balance round

  auto report = [&](const char* stage) {
    int covered = 0;
    std::vector<std::size_t> load;
    std::vector<int> up;
    for (int i = 0; i < kServers; ++i) {
      if (s.server_host(i).is_up()) up.push_back(i);
    }
    for (int v = 0; v < kVips; ++v) {
      if (s.coverage_count(s.vip(v), up) >= 1) ++covered;
    }
    std::size_t lo = SIZE_MAX, hi = 0;
    for (int i : up) {
      auto n = s.wam(i).owned().size();
      lo = std::min(lo, n);
      hi = std::max(hi, n);
    }
    std::printf("  %-12s %-12s covered=%d/%d  imbalance=%zu\n", "wackamole",
                stage, covered, kVips, hi - lo);
  };

  report("healthy");
  s.disconnect_server(0);
  s.disconnect_server(2);
  s.run(sim::seconds(20.0));  // fail-over + balance
  report("2 faults");
  s.reconnect_server(0);
  s.run(sim::seconds(20.0));
  report("1 revived");
}

void vrrp_run() {
  VrrpFarm farm;
  // keepalived-style static priority matrix: the master for VIP v is
  // server v%4, backups rank by ring distance. Each vrid gets its own UDP
  // port (the real protocol demultiplexes on the vrid inside one port).
  for (int s = 0; s < kServers; ++s) {
    farm.routers.emplace_back();
    for (int v = 0; v < kVips; ++v) {
      baselines::VrrpConfig cfg;
      cfg.vrid = static_cast<std::uint8_t>(v + 1);
      cfg.vips = {farm.vip(v)};
      int distance = (s - v % kServers + kServers) % kServers;
      cfg.priority = static_cast<std::uint8_t>(200 - 30 * distance);
      cfg.port = static_cast<std::uint16_t>(112 + v);
      auto r = std::make_unique<baselines::VrrpRouter>(
          *farm.hosts[static_cast<std::size_t>(s)], cfg);
      r->start();
      farm.routers.back().push_back(std::move(r));
    }
  }
  farm.sched.run_for(sim::seconds(15.0));
  farm.report("healthy");
  farm.hosts[0]->fail();
  farm.hosts[2]->fail();
  farm.sched.run_for(sim::seconds(20.0));
  farm.report("2 faults");
  farm.hosts[0]->recover();
  farm.sched.run_for(sim::seconds(20.0));
  farm.report("1 revived");
}

}  // namespace

int main() {
  bench::print_header(
      "N-way (Wackamole) vs pairwise-per-VIP (VRRP farm): 8 VIPs, 4 servers",
      "both cover through faults; only Wackamole re-balances — VRRP's "
      "post-fault load is frozen by its static priority matrix");
  std::printf("\n  %-12s %-12s %s\n", "system", "stage", "result");
  wackamole_run();
  vrrp_run();
  std::printf(
      "\n(Imbalance = max-min VIPs per reachable server. A VRRP farm needs\n"
      "one instance per VIP on every server — %d configurations here — and\n"
      "its load after churn is whatever the static priorities dictate.)\n",
      kServers * kVips);
  return 0;
}
