// Shared helpers for the reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/cluster_scenario.hpp"
#include "sim/stats.hpp"

namespace wam::bench {

/// One fail-over trial against a ClusterScenario: stabilize, balance,
/// probe VIP 0, disconnect its owner at a phase-shifted moment, and return
/// the client-perceived availability interruption in seconds.
/// Returns a negative value if the trial failed to produce a clean gap.
inline double interruption_trial(apps::ClusterOptions opt,
                                 sim::Duration fault_phase) {
  apps::ClusterScenario s(std::move(opt));
  s.start();
  if (!s.run_until_stable(sim::seconds(60.0))) return -1.0;
  s.wam(0).trigger_balance();
  s.run(sim::seconds(1.0));
  s.start_probe(0);
  // Phase-shift the fault against the heartbeat/advert cycles so trials
  // sample the detection-latency range rather than one fixed point.
  s.run(sim::seconds(1.0) + fault_phase);
  int victim = s.owner_of(0);
  if (victim < 0) return -1.0;
  s.disconnect_server(victim);
  s.run(sim::seconds(30.0));
  auto gaps = s.probe().interruptions();
  if (gaps.size() != 1) return -1.0;
  return sim::to_seconds(gaps.front().length());
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("==========================================================\n");
}

inline void print_row(const std::string& label, const sim::Stats& stats,
                      const char* unit) {
  if (stats.empty()) {
    std::printf("  %-28s (no samples)\n", label.c_str());
    return;
  }
  std::printf(
      "  %-28s mean=%8.3f %s  min=%8.3f  max=%8.3f  p99=%8.3f  n=%zu\n",
      label.c_str(), stats.mean(), unit, stats.min(), stats.max(),
      stats.percentile(99), stats.count());
}

}  // namespace wam::bench
