// Ablation — the re-balancing procedure of §3.4.
//
// Reallocate_IPs() only fills holes, so repeated fail/recover churn piles
// every address onto the surviving servers. The balance timeout trades
// responsiveness (smaller timeout -> less time spent unbalanced) against
// background traffic. This bench runs a churn sequence and reports the
// load imbalance (max - min groups per server) right after the churn and
// after the balance round, for several balance timeouts.
#include <cstdio>

#include "bench_common.hpp"

using namespace wam;

namespace {

std::size_t imbalance(apps::ClusterScenario& s,
                      const std::vector<int>& servers) {
  std::size_t lo = SIZE_MAX, hi = 0;
  for (int i : servers) {
    auto n = s.wam(i).owned().size();
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  return hi - lo;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: balance timeout vs load imbalance after churn",
      "without balancing the allocation stays arbitrarily lopsided; the "
      "timeout bounds how long (§3.4)");

  std::printf("\n  %-18s %-22s %-22s %-16s\n", "balance timeout",
              "imbalance after churn", "imbalance at +65 s",
              "balance rounds");
  for (double timeout_s : {0.0, 5.0, 20.0, 60.0}) {
    apps::ClusterOptions opt;
    opt.num_servers = 4;
    opt.num_vips = 12;
    opt.gcs = gcs::Config::spread_tuned();
    opt.balance_timeout = sim::seconds(timeout_s);
    apps::ClusterScenario s(opt);
    s.start();
    s.run_until_stable(sim::seconds(30.0));

    // Churn: kill and revive servers 1..3 in sequence. Every revival
    // returns a server with zero load.
    for (int victim : {1, 2, 3}) {
      s.disconnect_server(victim);
      s.run(sim::seconds(5.0));
      s.reconnect_server(victim);
      s.run(sim::seconds(5.0));
    }
    auto after_churn = imbalance(s, s.all_servers());
    s.run(sim::seconds(65.0));
    auto later = imbalance(s, s.all_servers());
    std::uint64_t rounds = s.obs.registry.sum("wam/*/balance_rounds");
    char label[32];
    if (timeout_s == 0.0) {
      std::snprintf(label, sizeof(label), "disabled");
    } else {
      std::snprintf(label, sizeof(label), "%.0f s", timeout_s);
    }
    std::printf("  %-18s %-22zu %-22zu %-16llu\n", label, after_churn, later,
                static_cast<unsigned long long>(rounds));
  }
  std::printf(
      "\n(12 VIPs over 4 servers: perfectly balanced = imbalance 0, all on "
      "one server = 12.)\n");
  return 0;
}
