// Ablation — the maturity bootstrap optimization of §3.4.
//
// "The reason for this optimization is to avoid quick IP reallocations as
// the cluster is rebooted." We roll a 6-server cluster through a staggered
// boot (one server every 3 s) with maturity enabled vs disabled and count
// the IP acquire/release churn (every acquire and release is a network-
// visible event: interface reconfiguration + ARP spoofing).
#include <cstdio>

#include "wackamole/control.hpp"

#include "bench_common.hpp"

using namespace wam;

namespace {

struct BootResult {
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  bool covered_exactly_once = false;
};

BootResult staggered_boot(bool maturity_enabled) {
  apps::ClusterOptions opt;
  opt.num_servers = 6;
  opt.num_vips = 12;
  opt.gcs = gcs::Config::spread_tuned();
  opt.balance_timeout = sim::seconds(1.5);
  // maturity_timeout > 0 turns the optimization on (servers boot immature).
  opt.maturity_timeout =
      maturity_enabled ? sim::seconds(25.0) : sim::kZero;
  apps::ClusterScenario s(opt);

  // Boot one server every 3 s (ClusterScenario::start starts all, so start
  // daemons manually). The aggressive 1.5 s balance period means a naive
  // (always-mature) cluster re-balances BETWEEN boots, churning addresses
  // on every join.
  for (int i = 0; i < opt.num_servers; ++i) {
    s.sched.schedule(sim::seconds(3.0 * i), [&s, i] {
      s.gcs_daemon(i).start();
      s.wam(i).start();
    });
  }
  s.run(sim::seconds(90.0));  // boot + maturity + a balance round

  BootResult result;
  result.acquires = s.obs.registry.sum("wam/*/acquires");
  result.releases = s.obs.registry.sum("wam/*/releases");
  result.covered_exactly_once = s.coverage_exactly_once(s.all_servers());
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: maturity bootstrap vs IP-reallocation churn on rolling boot",
      "the optimization exists 'to avoid quick IP reallocations as the "
      "cluster is rebooted' (§3.4)");

  std::printf("\n  %-22s %-12s %-12s %-12s %-10s\n", "mode", "acquires",
              "releases", "total churn", "coverage");
  for (bool enabled : {false, true}) {
    auto r = staggered_boot(enabled);
    std::printf("  %-22s %-12llu %-12llu %-12llu %-10s\n",
                enabled ? "maturity (25 s)" : "no maturity",
                static_cast<unsigned long long>(r.acquires),
                static_cast<unsigned long long>(r.releases),
                static_cast<unsigned long long>(r.acquires + r.releases),
                r.covered_exactly_once ? "OK" : "BROKEN");
  }
  std::printf(
      "\n(12 VIPs, 6 servers booting 3 s apart. The minimum possible churn\n"
      "is 12 acquires for initial coverage plus one balance round.)\n");
  return 0;
}
