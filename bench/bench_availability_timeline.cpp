// Availability timeline (extension): the operator's-eye view of a
// fail-over — aggregate request success rate over time, through a fault,
// for both Table 1 configurations. The dip's width is Figure 5's
// interruption; its depth is the failed server's share of the VIP set.
#include <cstdio>

#include "apps/workload.hpp"

#include "bench_common.hpp"

using namespace wam;

namespace {

void run_timeline(const char* label, const gcs::Config& config) {
  apps::ClusterOptions opt;
  opt.num_servers = 4;
  opt.num_vips = 8;
  opt.gcs = config;
  apps::ClusterScenario s(opt);
  s.start();
  s.run_until_stable(sim::seconds(30.0));
  s.wam(0).trigger_balance();
  s.run(sim::seconds(1.0));

  apps::WorkloadOptions wo;
  for (int k = 0; k < opt.num_vips; ++k) wo.targets.push_back(s.vip(k));
  wo.clients = 8;
  apps::Workload w(s.client_host(), wo);
  w.start();

  s.run(sim::seconds(4.0));
  auto fault_at = sim::to_seconds(s.sched.now().time_since_epoch());
  s.disconnect_server(1);
  s.run(config.fault_detection_timeout + config.discovery_timeout +
        sim::seconds(8.0));
  w.stop();
  s.run(sim::milliseconds(200));

  std::printf("\n%s (fault at t=%.1fs, 1 of 4 servers = 25%% of VIPs):\n",
              label, fault_at);
  std::printf("  %-8s %-10s %s\n", "t (s)", "avail", "");
  for (const auto& b : w.timeline(sim::seconds(1.0))) {
    double t = sim::to_seconds(b.start.time_since_epoch());
    int bars = static_cast<int>(b.availability() * 40);
    std::printf("  %-8.1f %-10.3f |%.*s\n", t, b.availability(), bars,
                "........................................");
  }
  std::printf("  overall availability: %.4f (%llu of %llu requests lost)\n",
              w.availability(),
              static_cast<unsigned long long>(w.lost()),
              static_cast<unsigned long long>(w.requests_sent()));
  std::printf(
      "  structured events: %zu recorded (views=%zu, acquires=%zu, "
      "faults=%zu)\n",
      s.timeline.size(), s.timeline.count(obs::EventType::kViewInstalled),
      s.timeline.count(obs::EventType::kVipAcquired),
      s.timeline.count(obs::EventType::kFaultInjected));
}

}  // namespace

int main() {
  bench::print_header(
      "Availability timeline through a fail-over (8 streams, 8 VIPs)",
      "dip width = Figure 5 interruption; dip depth = failed server's VIP "
      "share");
  run_timeline("tuned-spread", gcs::Config::spread_tuned());
  run_timeline("default-spread", gcs::Config::spread_default());
  return 0;
}
